package jobstore

import (
	"testing"
	"time"
)

// traceEvents extracts the event-name sequence of a job's trace.
func traceEvents(j *Job) []string {
	var out []string
	for _, ev := range j.Trace {
		out = append(out, ev.Event)
	}
	return out
}

func TestLifecycleTracePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{Kind: KindWorkload, Workload: "example1", TraceID: "req-42"}
	if err := st.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	st.NoteStage(j.ID, "pass1-structure")
	st.NoteStage(j.ID, "pass2-ddg")
	if err := st.Complete(j.ID, &Result{Status: "ok", WallNS: 123}); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.Get(j.ID)
	if got == nil {
		t.Fatal("job lost across reopen")
	}
	if got.TraceID != "req-42" {
		t.Fatalf("TraceID = %q, want req-42", got.TraceID)
	}
	want := []string{
		TraceIntake, TraceWALAppend, TraceQueueWait, TraceLease,
		TraceStage, TraceStage, TraceComplete,
	}
	evs := traceEvents(got)
	if len(evs) != len(want) {
		t.Fatalf("trace = %v, want %v", evs, want)
	}
	for i := range want {
		if evs[i] != want[i] {
			t.Fatalf("trace[%d] = %s, want %s (full: %v)", i, evs[i], want[i], evs)
		}
	}
	if got.Trace[4].Stage != "pass1-structure" || got.Trace[5].Stage != "pass2-ddg" {
		t.Fatalf("stage events = %+v, %+v", got.Trace[4], got.Trace[5])
	}
	if got.Trace[2].WallNS < 0 {
		t.Fatalf("queue-wait wall = %d, want >= 0", got.Trace[2].WallNS)
	}
	if got.InterruptedStage() != "pass2-ddg" {
		t.Fatalf("InterruptedStage = %q", got.InterruptedStage())
	}
}

func TestCrashRecoveryAppendsTraceMarker(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := st.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	st.NoteStage(j.ID, "pass2-ddg")
	// No Close: simulate the process dying mid-attempt.  The WAL file
	// holds the unsynced stage record via the OS page cache.
	st.wal.close()

	st2, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if len(recovered) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(recovered))
	}
	got := recovered[0]
	if got.State != StateQueued {
		t.Fatalf("recovered state = %s, want queued", got.State)
	}
	ev, ok := got.CrashRecovered()
	if !ok {
		t.Fatalf("no crash-recovered marker; trace = %v", traceEvents(got))
	}
	if ev.Stage != "pass2-ddg" {
		t.Fatalf("crash marker stage = %q, want pass2-ddg", ev.Stage)
	}
	if got.InterruptedStage() != "pass2-ddg" {
		t.Fatalf("InterruptedStage = %q, want pass2-ddg", got.InterruptedStage())
	}

	// The marker itself is durable: it rode the compaction that the
	// running->queued flip triggered.
	st2.Close()
	st3, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	j3 := st3.Get(j.ID)
	if _, ok := j3.CrashRecovered(); !ok {
		// A second crash-recovery marker may follow; the stage must
		// still be recoverable.
		if j3.InterruptedStage() != "pass2-ddg" {
			t.Fatalf("marker lost after second reopen: %v", traceEvents(j3))
		}
	}
}

func TestRetryAndQuarantineTraceEvents(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := st.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := st.Retry(j.ID, &JobError{Message: "transient"}, time.Now().Add(time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := st.Quarantine(j.ID, &JobError{Message: "poison", Terminal: true}); err != nil {
		t.Fatal(err)
	}
	got := st.Get(j.ID)
	evs := traceEvents(got)
	var sawRetry, sawQuarantine bool
	for i, ev := range evs {
		switch ev {
		case TraceRetry:
			sawRetry = true
			if got.Trace[i].Detail != "transient" {
				t.Fatalf("retry detail = %q", got.Trace[i].Detail)
			}
		case TraceQuarantine:
			sawQuarantine = true
			if got.Trace[i].Detail != "poison" {
				t.Fatalf("quarantine detail = %q", got.Trace[i].Detail)
			}
		}
	}
	if !sawRetry || !sawQuarantine {
		t.Fatalf("trace missing retry/quarantine: %v", evs)
	}
}

func TestTraceTruncatesAtCap(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := st.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < MaxTraceEvents+50; i++ {
		st.NoteStage(j.ID, "looping-stage")
	}
	got := st.Get(j.ID)
	if len(got.Trace) > MaxTraceEvents+1 {
		t.Fatalf("trace grew to %d events, cap is %d", len(got.Trace), MaxTraceEvents)
	}
	last := got.Trace[len(got.Trace)-1]
	if last.Event != "trace-truncated" {
		t.Fatalf("last trace event = %q, want the truncation marker", last.Event)
	}
}

func TestJobGetStripsNothingButCloneIsDeep(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := st.Submit(j); err != nil {
		t.Fatal(err)
	}
	a := st.Get(j.ID)
	a.Trace[0].Detail = "mutated"
	b := st.Get(j.ID)
	if b.Trace[0].Detail == "mutated" {
		t.Fatal("Get returned a shallow trace: clone aliases store state")
	}
}
