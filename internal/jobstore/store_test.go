package jobstore

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"polyprof/internal/obs"
)

func testOpen(t *testing.T, dir string) (*Store, []*Job) {
	t.Helper()
	s, recovered, err := Open(dir, Options{Registry: obs.NewRegistry(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	return s, recovered
}

// TestStoreSubmitGetList: the basic lifecycle without restarts.
func TestStoreSubmitGetList(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()

	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if j.ID == "" || j.State != StateQueued {
		t.Fatalf("submitted job = %+v", j)
	}
	attempt, err := s.Start(j.ID)
	if err != nil || attempt != 1 {
		t.Fatalf("start = %d, %v", attempt, err)
	}
	if _, err := s.Start(j.ID); err == nil {
		t.Fatal("double start accepted")
	}
	res := &Result{Status: "ok", Report: json.RawMessage(`{"x":1}`)}
	if err := s.Complete(j.ID, res); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(j.ID, res); err == nil {
		t.Fatal("double completion accepted")
	}
	got := s.Get(j.ID)
	if got.State != StateSucceeded || got.Result == nil || string(got.Result.Report) != `{"x":1}` {
		t.Fatalf("job after completion = %+v", got)
	}
	if l := s.List(StateSucceeded); len(l) != 1 || l[0].ID != j.ID {
		t.Fatalf("list(succeeded) = %+v", l)
	}
	if l := s.List(StateQueued); len(l) != 0 {
		t.Fatalf("list(queued) = %+v", l)
	}
}

// TestStoreRestartDurability: acknowledged jobs — queued, running,
// succeeded, failed — survive a reopen with the right states: running
// re-enqueues, terminal states stay terminal with their payloads.
func TestStoreRestartDurability(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)

	mk := func() *Job {
		j := &Job{Kind: KindWorkload, Workload: "example1"}
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		return j
	}
	queued := mk()
	running := mk()
	done := mk()
	failed := mk()
	if _, err := s.Start(running.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(done.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(done.ID, &Result{Status: "ok", Report: json.RawMessage(`{"r":2}`)}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(failed.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Quarantine(failed.ID, &JobError{Message: "poison", Terminal: true, Attempt: 1}); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash by just reopening the directory.
	s2, recovered := testOpen(t, dir)
	defer s2.Close()

	if got := s2.Get(queued.ID); got == nil || got.State != StateQueued {
		t.Fatalf("queued job after crash = %+v", got)
	}
	if got := s2.Get(running.ID); got == nil || got.State != StateQueued || got.Attempts != 1 {
		t.Fatalf("running job after crash = %+v", got)
	}
	if got := s2.Get(done.ID); got == nil || got.State != StateSucceeded || string(got.Result.Report) != `{"r":2}` {
		t.Fatalf("succeeded job after crash = %+v", got)
	}
	if got := s2.Get(failed.ID); got == nil || got.State != StateFailed || got.Error == nil || got.Error.Message != "poison" {
		t.Fatalf("failed job after crash = %+v", got)
	}
	ids := map[string]bool{}
	for _, j := range recovered {
		ids[j.ID] = true
	}
	if !ids[queued.ID] || !ids[running.ID] || ids[done.ID] || ids[failed.ID] {
		t.Fatalf("recovered set = %v", ids)
	}
	// New submissions must not collide with pre-crash ids.
	nj := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s2.Submit(nj); err != nil {
		t.Fatal(err)
	}
	for _, old := range []string{queued.ID, running.ID, done.ID, failed.ID} {
		if nj.ID == old {
			t.Fatalf("id %s reused after crash", nj.ID)
		}
	}
}

// TestStoreSnapshotCompaction: compaction folds the WAL into
// snapshot.json, drops old generations, and the result reopens
// identically — including after repeated cycles.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SnapshotEvery: 4, Registry: obs.NewRegistry(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		j := &Job{Kind: KindWorkload, Workload: "example1"}
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Start(j.ID); err != nil {
			t.Fatal(err)
		}
		if err := s.Complete(j.ID, &Result{Status: "ok", WallNS: int64(i)}); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close-time compaction only the snapshot and one fresh WAL
	// generation should remain.
	entries, _ := os.ReadDir(dir)
	var wals int
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal.") {
			wals++
		}
	}
	if wals != 1 {
		names := []string{}
		for _, e := range entries {
			names = append(names, e.Name())
		}
		t.Fatalf("want exactly 1 WAL generation after compaction, have %v", names)
	}

	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if len(recovered) != 0 {
		t.Fatalf("recovered = %v, want none", recovered)
	}
	for i, id := range ids {
		j := s2.Get(id)
		if j == nil || j.State != StateSucceeded || j.Result.WallNS != int64(i) {
			t.Fatalf("job %s after compacted reopen = %+v", id, j)
		}
	}
}

// TestStoreTornTailRecovery: a crash that tears the last WAL record
// loses only that unacknowledged record; everything fsynced before it
// survives and the torn bytes are truncated away.
func TestStoreTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// Tear the active generation by appending garbage (a partial write
	// the crash never finished).
	gens, err := s.walGenerations()
	if err != nil || len(gens) == 0 {
		t.Fatalf("generations: %v %v", gens, err)
	}
	active := s.walFile(gens[len(gens)-1])
	f, err := os.OpenFile(active, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x13, 0x37, 0xbe})
	f.Close()

	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if got := s2.Get(j.ID); got == nil || got.State != StateQueued {
		t.Fatalf("job after torn tail = %+v", got)
	}
	if len(recovered) != 1 || recovered[0].ID != j.ID {
		t.Fatalf("recovered = %+v", recovered)
	}
}

// TestStoreHistoryPersists: request-history blobs ride the same WAL and
// reappear after a reopen, bounded by MaxHistory.
func TestStoreHistoryPersists(t *testing.T) {
	dir := t.TempDir()
	s, _, err := Open(dir, Options{MaxHistory: 3, Registry: obs.NewRegistry(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		blob := json.RawMessage(fmt.Sprintf(`{"id":"req-%d"}`, i))
		if err := s.AppendHistory(blob); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := testOpen(t, dir)
	defer s2.Close()
	hist := s2.History()
	if len(hist) != 3 {
		t.Fatalf("history length = %d, want 3 (bounded)", len(hist))
	}
	if string(hist[2]) != `{"id":"req-4"}` || string(hist[0]) != `{"id":"req-2"}` {
		t.Fatalf("history = %v", hist)
	}
}

// TestStoreCorruptSnapshotFallsBack: a trashed snapshot.json degrades
// to replaying the surviving WAL generations instead of failing open.
func TestStoreCorruptSnapshotFallsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// Submit lives in the current WAL generation; corrupt the snapshot
	// written at Open time.
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("not json{"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if got := s2.Get(j.ID); got == nil || got.State != StateQueued {
		t.Fatalf("job after snapshot corruption = %+v", got)
	}
	if len(recovered) != 1 {
		t.Fatalf("recovered = %+v", recovered)
	}
}

// TestRetryClassification: the error taxonomy the pool relies on.
func TestRetryClassification(t *testing.T) {
	if !Retryable(fmt.Errorf("wrapped: %w", ErrRetryable)) {
		t.Fatal("ErrRetryable chain not retryable")
	}
	if Retryable(fmt.Errorf("validation: bad register")) {
		t.Fatal("plain error retryable")
	}
	je := NewJobError(fmt.Errorf("program rejected: bad block"), 2, 7)
	if !je.Terminal || je.Attempt != 2 || je.SpanID != 7 {
		t.Fatalf("job error = %+v", je)
	}
	if je2 := NewJobError(fmt.Errorf("x: %w", ErrRetryable), 1, 0); je2.Terminal {
		t.Fatalf("retryable error marked terminal: %+v", je2)
	}
}

// TestParseState rejects unknown filters.
func TestParseState(t *testing.T) {
	if st, err := ParseState("queued"); err != nil || st != StateQueued {
		t.Fatalf("ParseState(queued) = %v, %v", st, err)
	}
	if _, err := ParseState("exploded"); err == nil {
		t.Fatal("ParseState accepted garbage")
	}
}

// TestStoreGaugesAndCounters: the obs wiring the issue asks for —
// per-state gauges and lifecycle counters move with the jobs.
func TestStoreGaugesAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s, _, err := Open(t.TempDir(), Options{Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("jobs.queued").Value(); got != 1 {
		t.Fatalf("jobs.queued = %d, want 1", got)
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("jobs.running").Value(); got != 1 {
		t.Fatalf("jobs.running = %d, want 1", got)
	}
	if err := s.Retry(j.ID, &JobError{Message: "transient"}, time.Now()); err != nil {
		t.Fatal(err)
	}
	if got := reg.Counter("jobs.retries").Value(); got != 1 {
		t.Fatalf("jobs.retries = %d, want 1", got)
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(j.ID, &Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	if got := reg.Gauge("jobs.succeeded").Value(); got != 1 {
		t.Fatalf("jobs.succeeded = %d, want 1", got)
	}
	if got := reg.Counter("jobstore.wal.records").Value(); got == 0 {
		t.Fatal("jobstore.wal.records never incremented")
	}
	if h := reg.Histogram("jobstore.wal.fsync_ns"); h == nil || h.Count() == 0 {
		t.Fatal("jobstore.wal.fsync_ns histogram empty")
	}
}
