package jobstore

import (
	"testing"

	"polyprof/internal/progress"
)

// TestProgressLifecycle: live progress is visible only while the job
// runs with a tracker attached, events are monotone within a stage,
// and the view is volatile — a store restart clears it instead of
// resurrecting stale numbers from the WAL.
func TestProgressLifecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)

	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if p := s.Get(j.ID).Progress; p != nil {
		t.Fatalf("queued job has progress %+v", p)
	}

	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	// Running but no tracker attached yet: still no progress.
	if p := s.Get(j.ID).Progress; p != nil {
		t.Fatalf("untracked running job has progress %+v", p)
	}

	tr := &progress.Tracker{}
	s.AttachProgress(j.ID, tr)
	tr.StartStage("pass2-ddg", 1000)
	var last uint64
	for _, n := range []uint64{10, 250, 999} {
		tr.SetEvents(n)
		p := s.Get(j.ID).Progress
		if p == nil {
			t.Fatal("running tracked job has no progress")
		}
		if p.Stage != "pass2-ddg" || p.Total != 1000 {
			t.Fatalf("progress = %+v", p)
		}
		if p.Events != n || p.Events < last {
			t.Fatalf("events = %d after SetEvents(%d), last %d", p.Events, n, last)
		}
		last = p.Events
	}
	// Stage boundary resets the counter but keeps reporting.
	tr.StartStage("fold-finish", 0)
	if p := s.Get(j.ID).Progress; p == nil || p.Stage != "fold-finish" || p.Events != 0 {
		t.Fatalf("post-stage-change progress = %+v", p)
	}

	// Restart the store mid-run (a crash): the recovered job must come
	// back without any progress — trackers are in-memory only.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if len(recovered) != 1 || recovered[0].ID != j.ID {
		t.Fatalf("recovered = %+v", recovered)
	}
	got := s2.Get(j.ID)
	if got == nil {
		t.Fatal("job lost across restart")
	}
	if got.Progress != nil {
		t.Fatalf("restart resurrected progress %+v", got.Progress)
	}

	// A fresh attempt attaches a fresh tracker and reports again from
	// zero; completing the job ends the live view for good.
	if _, err := s2.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	tr2 := &progress.Tracker{}
	s2.AttachProgress(j.ID, tr2)
	tr2.StartStage("pass1-structure", 0)
	if p := s2.Get(j.ID).Progress; p == nil || p.Stage != "pass1-structure" {
		t.Fatalf("second-attempt progress = %+v", p)
	}
	if err := s2.Complete(j.ID, &Result{}); err != nil {
		t.Fatal(err)
	}
	s2.DetachProgress(j.ID)
	if p := s2.Get(j.ID).Progress; p != nil {
		t.Fatalf("terminal job has progress %+v", p)
	}
}
