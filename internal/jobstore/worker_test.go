package jobstore

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"polyprof/internal/obs"
)

// fastPool builds a pool with millisecond backoff for tests.
func fastPool(s *Store, run Runner, workers, maxAttempts int) *Pool {
	return NewPool(s, run, PoolOptions{
		Workers:     workers,
		MaxAttempts: maxAttempts,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Registry:    obs.NewRegistry(),
	})
}

// waitTerminal polls until the job leaves the live states.
func waitTerminal(t *testing.T, s *Store, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j := s.Get(id); j != nil && j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state: %+v", id, s.Get(id))
	return nil
}

func submit(t *testing.T, s *Store, p *Pool) *Job {
	t.Helper()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	p.Enqueue(j.ID, time.Time{})
	return j
}

// TestPoolRunsJobs: submitted jobs execute and complete with their
// results persisted.
func TestPoolRunsJobs(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return &Result{Status: "ok", Ops: 42}, nil
	}, 2, 3)
	pool.Start(nil)
	defer pool.Stop()

	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, submit(t, s, pool))
	}
	for _, j := range jobs {
		got := waitTerminal(t, s, j.ID)
		if got.State != StateSucceeded || got.Result == nil || got.Result.Ops != 42 {
			t.Fatalf("job %s = %+v", j.ID, got)
		}
		if got.Attempts != 1 {
			t.Fatalf("job %s took %d attempts", j.ID, got.Attempts)
		}
	}
}

// TestPoolRetriesTransientFailures: a runner that fails retryably twice
// succeeds on the third attempt, with backoff in between.
func TestPoolRetriesTransientFailures(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calls atomic.Int64
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("flaky storage: %w", ErrRetryable)
		}
		return &Result{Status: "ok"}, nil
	}, 1, 5)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateSucceeded || got.Attempts != 3 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
}

// TestPoolTerminalErrorNotRetried: a terminal (validation-shaped)
// failure quarantines on the first attempt — never retried.
func TestPoolTerminalErrorNotRetried(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calls atomic.Int64
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		calls.Add(1)
		return nil, fmt.Errorf("program rejected: unknown opcode")
	}, 1, 5)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 1 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	if got.Error == nil || !got.Error.Terminal || got.Error.Message == "" {
		t.Fatalf("terminal error not recorded: %+v", got.Error)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("runner called %d times, want 1", n)
	}
}

// TestPoolQuarantinesPoison: a job that fails retryably forever is
// quarantined after MaxAttempts with the last error attached.
func TestPoolQuarantinesPoison(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return nil, fmt.Errorf("always down: %w", ErrRetryable)
	}, 1, 3)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 3 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	if got.Error == nil || !got.Error.Terminal {
		t.Fatalf("quarantine error = %+v", got.Error)
	}
}

// TestPoolPanicContained: a panicking runner neither kills the worker
// nor wedges the job — it retries and eventually quarantines.
func TestPoolPanicContained(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calm atomic.Bool
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		if calm.Load() {
			return &Result{Status: "ok"}, nil
		}
		panic("hostile program escaped")
	}, 1, 2)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 2 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	// Same pool, same worker: if the panic had killed it, the next job
	// would never run.
	calm.Store(true)
	j2 := submit(t, s, pool)
	if got := waitTerminal(t, s, j2.ID); got.State != StateSucceeded {
		t.Fatalf("post-panic job = %+v", got)
	}
}

// TestPoolShutdownLeavesJobQueued: Stop cancels an in-flight attempt;
// the job goes back to queued (not failed) for the next process.
func TestPoolShutdownLeavesJobQueued(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	started := make(chan struct{})
	pool := fastPool(s, func(ctx context.Context, job *Job, attempt int) (*Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, 1, 3)
	pool.Start(nil)

	j := submit(t, s, pool)
	<-started
	pool.Stop()
	got := s.Get(j.ID)
	if got.State != StateQueued {
		t.Fatalf("job after shutdown = %s, want queued", got.State)
	}
	// A new pool on the same store picks it up (what Open+Start do on
	// restart).
	pool2 := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return &Result{Status: "ok"}, nil
	}, 1, 3)
	pool2.Start([]*Job{got})
	defer pool2.Stop()
	if got := waitTerminal(t, s, j.ID); got.State != StateSucceeded {
		t.Fatalf("job after restart = %+v", got)
	}
}

// TestBackoffGrowsAndCaps: the delay doubles per attempt, stays within
// [base/2, max), and jitters.
func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &Pool{opts: PoolOptions{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second}}
	for attempt, wantFull := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		8: time.Second, // capped
	} {
		for i := 0; i < 20; i++ {
			d := p.backoff(attempt)
			if d < wantFull/2 || d > wantFull {
				t.Fatalf("backoff(%d) = %s, want in [%s, %s]", attempt, d, wantFull/2, wantFull)
			}
		}
	}
}
