package jobstore

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"polyprof/internal/obs"
)

// fastPool builds a pool with millisecond backoff for tests.
func fastPool(s *Store, run Runner, workers, maxAttempts int) *Pool {
	return NewPool(s, run, PoolOptions{
		Workers:     workers,
		MaxAttempts: maxAttempts,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
		Registry:    obs.NewRegistry(),
	})
}

// waitTerminal polls until the job leaves the live states.
func waitTerminal(t *testing.T, s *Store, id string) *Job {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j := s.Get(id); j != nil && j.State.Terminal() {
			return j
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state: %+v", id, s.Get(id))
	return nil
}

func submit(t *testing.T, s *Store, p *Pool) *Job {
	t.Helper()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	p.Enqueue(j.ID, time.Time{})
	return j
}

// TestPoolRunsJobs: submitted jobs execute and complete with their
// results persisted.
func TestPoolRunsJobs(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return &Result{Status: "ok", Ops: 42}, nil
	}, 2, 3)
	pool.Start(nil)
	defer pool.Stop()

	var jobs []*Job
	for i := 0; i < 5; i++ {
		jobs = append(jobs, submit(t, s, pool))
	}
	for _, j := range jobs {
		got := waitTerminal(t, s, j.ID)
		if got.State != StateSucceeded || got.Result == nil || got.Result.Ops != 42 {
			t.Fatalf("job %s = %+v", j.ID, got)
		}
		if got.Attempts != 1 {
			t.Fatalf("job %s took %d attempts", j.ID, got.Attempts)
		}
	}
}

// TestPoolRetriesTransientFailures: a runner that fails retryably twice
// succeeds on the third attempt, with backoff in between.
func TestPoolRetriesTransientFailures(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calls atomic.Int64
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		if calls.Add(1) < 3 {
			return nil, fmt.Errorf("flaky storage: %w", ErrRetryable)
		}
		return &Result{Status: "ok"}, nil
	}, 1, 5)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateSucceeded || got.Attempts != 3 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
}

// TestPoolTerminalErrorNotRetried: a terminal (validation-shaped)
// failure quarantines on the first attempt — never retried.
func TestPoolTerminalErrorNotRetried(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calls atomic.Int64
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		calls.Add(1)
		return nil, fmt.Errorf("program rejected: unknown opcode")
	}, 1, 5)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 1 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	if got.Error == nil || !got.Error.Terminal || got.Error.Message == "" {
		t.Fatalf("terminal error not recorded: %+v", got.Error)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("runner called %d times, want 1", n)
	}
}

// TestPoolQuarantinesPoison: a job that fails retryably forever is
// quarantined after MaxAttempts with the last error attached.
func TestPoolQuarantinesPoison(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return nil, fmt.Errorf("always down: %w", ErrRetryable)
	}, 1, 3)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 3 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	if got.Error == nil || !got.Error.Terminal {
		t.Fatalf("quarantine error = %+v", got.Error)
	}
}

// TestPoolQuarantinesCrashLoopedJobAtRecovery: a job whose attempts
// were all interrupted by crashes (Start persisted, nothing after)
// arrives at recovery with its attempt budget spent; the pool must
// quarantine it without running it again, or a job that hard-kills the
// process would crash-loop the daemon forever.
func TestPoolQuarantinesCrashLoopedJobAtRecovery(t *testing.T) {
	dir := t.TempDir()
	const maxAttempts = 3
	s, _ := testOpen(t, dir)
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	var recovered []*Job
	for i := 1; i <= maxAttempts; i++ {
		if _, err := s.Start(j.ID); err != nil {
			t.Fatal(err)
		}
		// Crash mid-attempt: no Complete/Retry/Quarantine transition;
		// reopening replays the running job back to queued.
		s.Close()
		s, recovered = testOpen(t, dir)
		if len(recovered) != 1 || recovered[0].Attempts != i {
			t.Fatalf("after crash %d: recovered = %+v", i, recovered)
		}
	}
	defer s.Close()

	var calls atomic.Int64
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		calls.Add(1)
		return &Result{Status: "ok"}, nil
	}, 1, maxAttempts)
	pool.Start(recovered)
	defer pool.Stop()

	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != maxAttempts {
		t.Fatalf("job = state %s attempts %d, want failed/%d", got.State, got.Attempts, maxAttempts)
	}
	if got.Error == nil || !got.Error.Terminal {
		t.Fatalf("quarantine error = %+v", got.Error)
	}
	if n := calls.Load(); n != 0 {
		t.Fatalf("runner invoked %d times for an attempts-exhausted job, want 0", n)
	}
}

// TestPoolEnqueueDedupes: enqueueing an id already in the ready queue
// or timer-pending does not queue it twice, and of two pending run
// times the earlier wins.
func TestPoolEnqueueDedupes(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	p := fastPool(s, nil, 1, 3)
	// No workers started: pushes accumulate in ready for inspection.
	p.push("job-1")
	p.push("job-1")
	p.Enqueue("job-1", time.Now().Add(time.Hour))
	if len(p.ready) != 1 || len(p.timers) != 0 {
		t.Fatalf("ready = %v timers = %d, want 1 ready and no timer", p.ready, len(p.timers))
	}

	// Two timers for one id collapse; the earlier run time wins.
	far := time.Now().Add(time.Hour)
	near := time.Now().Add(time.Minute)
	p.Enqueue("job-2", far)
	p.Enqueue("job-2", far.Add(time.Hour)) // later: ignored
	if jt := p.timers["job-2"]; jt == nil || !jt.at.Equal(far) {
		t.Fatalf("timer at %v, want %v", p.timers["job-2"], far)
	}
	p.Enqueue("job-2", near) // earlier: pulled forward
	if jt := p.timers["job-2"]; jt == nil || !jt.at.Equal(near) {
		t.Fatalf("timer not pulled forward: %+v", p.timers["job-2"])
	}
	if len(p.timers) != 1 {
		t.Fatalf("timers = %d, want 1", len(p.timers))
	}
	// An immediate enqueue cancels the pending timer rather than leaving
	// a duplicate behind.
	p.push("job-2")
	if len(p.timers) != 0 || len(p.ready) != 2 {
		t.Fatalf("after immediate push: timers = %d ready = %v", len(p.timers), p.ready)
	}
	p.Stop()
}

// TestPoolPanicContained: a panicking runner neither kills the worker
// nor wedges the job — it retries and eventually quarantines.
func TestPoolPanicContained(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var calm atomic.Bool
	pool := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		if calm.Load() {
			return &Result{Status: "ok"}, nil
		}
		panic("hostile program escaped")
	}, 1, 2)
	pool.Start(nil)
	defer pool.Stop()

	j := submit(t, s, pool)
	got := waitTerminal(t, s, j.ID)
	if got.State != StateFailed || got.Attempts != 2 {
		t.Fatalf("job = state %s attempts %d", got.State, got.Attempts)
	}
	// Same pool, same worker: if the panic had killed it, the next job
	// would never run.
	calm.Store(true)
	j2 := submit(t, s, pool)
	if got := waitTerminal(t, s, j2.ID); got.State != StateSucceeded {
		t.Fatalf("post-panic job = %+v", got)
	}
}

// TestPoolShutdownLeavesJobQueued: Stop cancels an in-flight attempt;
// the job goes back to queued (not failed) for the next process.
func TestPoolShutdownLeavesJobQueued(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	started := make(chan struct{})
	pool := fastPool(s, func(ctx context.Context, job *Job, attempt int) (*Result, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	}, 1, 3)
	pool.Start(nil)

	j := submit(t, s, pool)
	<-started
	pool.Stop()
	got := s.Get(j.ID)
	if got.State != StateQueued {
		t.Fatalf("job after shutdown = %s, want queued", got.State)
	}
	// A new pool on the same store picks it up (what Open+Start do on
	// restart).
	pool2 := fastPool(s, func(_ context.Context, job *Job, attempt int) (*Result, error) {
		return &Result{Status: "ok"}, nil
	}, 1, 3)
	pool2.Start([]*Job{got})
	defer pool2.Stop()
	if got := waitTerminal(t, s, j.ID); got.State != StateSucceeded {
		t.Fatalf("job after restart = %+v", got)
	}
}

// TestBackoffGrowsAndCaps: the delay doubles per attempt, stays within
// [base/2, max), and jitters.
func TestBackoffGrowsAndCaps(t *testing.T) {
	p := &Pool{opts: PoolOptions{BackoffBase: 100 * time.Millisecond, BackoffMax: time.Second}}
	for attempt, wantFull := range map[int]time.Duration{
		1: 100 * time.Millisecond,
		2: 200 * time.Millisecond,
		3: 400 * time.Millisecond,
		8: time.Second, // capped
	} {
		for i := 0; i < 20; i++ {
			d := p.backoff(attempt)
			if d < wantFull/2 || d > wantFull {
				t.Fatalf("backoff(%d) = %s, want in [%s, %s]", attempt, d, wantFull/2, wantFull)
			}
		}
	}
}
