package jobstore

import (
	"bytes"
	"fmt"
	"testing"
)

// TestCheckpointRoundTrip: a running job's checkpoint commits, replaces
// earlier ones, survives a crash-reopen (both via WAL replay and via
// snapshot compaction), and disappears on the terminal transition.
func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)

	j := &Job{Kind: KindWorkload, Workload: "example1", EpochEvents: 1000}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	// No checkpoint before the job runs, and none accepted either.
	if err := s.SaveCheckpoint(&JobCheckpoint{JobID: j.ID, Epoch: 1, Data: []byte("x")}); err == nil {
		t.Fatal("checkpoint accepted for a queued job")
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 3; e++ {
		ck := &JobCheckpoint{
			JobID: j.ID, Epoch: e, Events: e * 1000, Attempt: 1,
			Data: []byte(fmt.Sprintf("ckpt-%d", e)),
		}
		if err := s.SaveCheckpoint(ck); err != nil {
			t.Fatal(err)
		}
	}
	got := s.LoadCheckpoint(j.ID)
	if got == nil || got.Epoch != 3 || !bytes.Equal(got.Data, []byte("ckpt-3")) {
		t.Fatalf("latest checkpoint = %+v", got)
	}

	// Crash-reopen: the committed checkpoint replays from the WAL and
	// the re-enqueued job resumes from it.
	s2, recovered := testOpen(t, dir)
	if len(recovered) != 1 || recovered[0].ID != j.ID {
		t.Fatalf("recovered = %+v", recovered)
	}
	got = s2.LoadCheckpoint(j.ID)
	if got == nil || got.Epoch != 3 || got.Events != 3000 || !bytes.Equal(got.Data, []byte("ckpt-3")) {
		t.Fatalf("checkpoint after crash = %+v", got)
	}

	// Compaction carries it into the snapshot; a further reopen reads
	// it back without any WAL records.
	if err := s2.Snapshot(); err != nil {
		t.Fatal(err)
	}
	s3, _ := testOpen(t, dir)
	if got = s3.LoadCheckpoint(j.ID); got == nil || got.Epoch != 3 {
		t.Fatalf("checkpoint after snapshot reopen = %+v", got)
	}

	// The terminal transition clears it, durably.
	if _, err := s3.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := s3.Complete(j.ID, &Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	if got = s3.LoadCheckpoint(j.ID); got != nil {
		t.Fatalf("checkpoint survived completion: %+v", got)
	}
	s4, _ := testOpen(t, dir)
	defer s4.Close()
	if got = s4.LoadCheckpoint(j.ID); got != nil {
		t.Fatalf("checkpoint resurrected by replay: %+v", got)
	}
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCheckpointOversizeSkipped: a checkpoint too large for one WAL
// record is skipped (not an error), keeping the previous committed
// epoch as the resume point.
func TestCheckpointOversizeSkipped(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := &Job{Kind: KindWorkload, Workload: "example1", EpochEvents: 10}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveCheckpoint(&JobCheckpoint{JobID: j.ID, Epoch: 1, Data: []byte("small")}); err != nil {
		t.Fatal(err)
	}
	huge := &JobCheckpoint{JobID: j.ID, Epoch: 2, Data: make([]byte, MaxWALRecord+1)}
	if err := s.SaveCheckpoint(huge); err != nil {
		t.Fatalf("oversize checkpoint should skip, not fail: %v", err)
	}
	if got := s.LoadCheckpoint(j.ID); got == nil || got.Epoch != 1 {
		t.Fatalf("resume point after oversize skip = %+v", got)
	}
}

// TestNoteCacheHitOnTerminalJob: cache-hit trace events land on a
// succeeded job and survive a reopen — unlike stage events, which
// terminal jobs refuse.
func TestNoteCacheHitOnTerminalJob(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)
	j := &Job{Kind: KindWorkload, Workload: "example1", CacheKey: "k1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(j.ID, &Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	s.NoteCacheHit(j.ID, "duplicate submission job-99")
	got := s.Get(j.ID)
	var hit *TraceEvent
	for i := range got.Trace {
		if got.Trace[i].Event == TraceCacheHit {
			hit = &got.Trace[i]
		}
	}
	if hit == nil || hit.Detail != "duplicate submission job-99" {
		t.Fatalf("trace after cache hit = %+v", got.Trace)
	}

	// Unsynced trace records still survive a clean reopen.
	s2, _ := testOpen(t, dir)
	defer s2.Close()
	got = s2.Get(j.ID)
	found := false
	for _, ev := range got.Trace {
		found = found || ev.Event == TraceCacheHit
	}
	if !found {
		t.Fatalf("cache-hit trace lost across reopen: %+v", got.Trace)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestListPage: offset/limit pagination over the newest-first order,
// with the total reported for the full filtered set.
func TestListPage(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	var ids []string
	for i := 0; i < 7; i++ {
		j := &Job{Kind: KindWorkload, Workload: "example1"}
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, j.ID)
	}
	// Make two of them succeed so the state filter has something to do.
	for _, id := range ids[:2] {
		if _, err := s.Start(id); err != nil {
			t.Fatal(err)
		}
		if err := s.Complete(id, &Result{Status: "ok"}); err != nil {
			t.Fatal(err)
		}
	}

	page, total := s.ListPage("", 2, 3)
	if total != 7 || len(page) != 3 {
		t.Fatalf("page(offset=2,limit=3): total=%d len=%d", total, len(page))
	}
	// Newest first: offset 2 of 7 jobs lands on the 5th submission.
	if page[0].ID != ids[4] || page[2].ID != ids[2] {
		t.Fatalf("page ids = %s..%s, want %s..%s", page[0].ID, page[2].ID, ids[4], ids[2])
	}
	if page, total = s.ListPage(StateSucceeded, 0, 10); total != 2 || len(page) != 2 {
		t.Fatalf("page(succeeded): total=%d len=%d", total, len(page))
	}
	if page, total = s.ListPage("", 10, 3); total != 7 || len(page) != 0 {
		t.Fatalf("page past the end: total=%d len=%d", total, len(page))
	}
	if page, total = s.ListPage("", 0, 0); total != 7 || len(page) != 7 {
		t.Fatalf("page(unlimited): total=%d len=%d", total, len(page))
	}
}
