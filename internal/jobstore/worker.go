package jobstore

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
)

// Runner executes one attempt of one job.  It returns the persisted
// result, or an error the pool classifies with Retryable.
type Runner func(ctx context.Context, job *Job, attempt int) (*Result, error)

// PoolOptions tunes the worker pool.
type PoolOptions struct {
	// Workers bounds concurrent local job executions (default 2).
	// Negative disables local execution entirely — the process is a
	// pure coordinator whose jobs only run on remote lease-holding
	// workers (the reclaimer and TTL sweeper still run).
	Workers int
	// MaxAttempts quarantines a job after this many started attempts
	// (default 3).  Crash-interrupted attempts count: the attempt
	// counter is persisted at Start, so a job that reliably kills the
	// daemon cannot crash-loop it forever.
	MaxAttempts int
	// BackoffBase is the first retry delay (default 250ms); each
	// further attempt doubles it, capped at BackoffMax (default 30s),
	// with jitter in [delay/2, delay).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// TTL garbage-collects terminal jobs: the pool sweeps the store
	// periodically and deletes (WAL-logged) succeeded/failed jobs that
	// finished more than TTL ago.  Zero disables the sweeper.
	TTL time.Duration
	// SweepEvery is the sweeper's tick (default TTL/4, clamped to
	// [1s, 1m]).
	SweepEvery time.Duration
	// DefaultLeaseTTL is the lease duration granted to remote workers
	// that do not request one (default 30s, clamped to
	// [MinLeaseTTL, MaxLeaseTTL]).
	DefaultLeaseTTL time.Duration
	// LeaseReclaimEvery is the reclaimer's tick — how often expired
	// leases are taken back and their jobs re-queued (default
	// DefaultLeaseTTL/4, clamped to [100ms, 2s]).
	LeaseReclaimEvery time.Duration
	// Registry receives pool counters (default obs.Default).
	Registry *obs.Registry
	// Logf receives lifecycle lines (nil to disable).
	Logf func(format string, args ...any)
}

// Pool executes queued jobs from a Store with bounded concurrency,
// per-job retry with exponential backoff, and poison quarantine.
type Pool struct {
	store  *Store
	run    Runner
	opts   PoolOptions
	reg    *obs.Registry
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	ready   []string // job ids whose NextRunAt has passed, FIFO
	inReady map[string]bool
	timers  map[string]*jobTimer
	stopped bool

	wg sync.WaitGroup
}

// NewPool builds a pool over store; call Start to begin executing.
func NewPool(store *Store, run Runner, opts PoolOptions) *Pool {
	switch {
	case opts.Workers == 0:
		opts.Workers = 2
	case opts.Workers < 0:
		opts.Workers = 0 // coordinator-only: no local execution
	}
	opts.DefaultLeaseTTL = ClampLeaseTTL(opts.DefaultLeaseTTL, 30*time.Second)
	if opts.LeaseReclaimEvery <= 0 {
		opts.LeaseReclaimEvery = opts.DefaultLeaseTTL / 4
	}
	if opts.LeaseReclaimEvery < 100*time.Millisecond {
		opts.LeaseReclaimEvery = 100 * time.Millisecond
	}
	if opts.LeaseReclaimEvery > 2*time.Second {
		opts.LeaseReclaimEvery = 2 * time.Second
	}
	if opts.MaxAttempts <= 0 {
		opts.MaxAttempts = 3
	}
	if opts.BackoffBase <= 0 {
		opts.BackoffBase = 250 * time.Millisecond
	}
	if opts.BackoffMax <= 0 {
		opts.BackoffMax = 30 * time.Second
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	ctx, cancel := context.WithCancel(context.Background())
	p := &Pool{
		store: store, run: run, opts: opts, reg: opts.Registry,
		ctx: ctx, cancel: cancel,
		inReady: map[string]bool{},
		timers:  map[string]*jobTimer{},
	}
	p.cond = sync.NewCond(&p.mu)
	return p
}

// Start launches the workers (plus the TTL sweeper when configured)
// and enqueues the recovered jobs (the queued + formerly-running jobs
// Open returned).
func (p *Pool) Start(recovered []*Job) {
	for i := 0; i < p.opts.Workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	if p.opts.TTL > 0 {
		p.wg.Add(1)
		go p.sweeper()
	}
	p.wg.Add(1)
	go p.reclaimer()
	for _, j := range recovered {
		p.Enqueue(j.ID, j.NextRunAt)
	}
}

// reclaimer periodically takes back expired leases: their workers were
// killed, partitioned away, or wedged, so the jobs go back to the
// queue (or quarantine when their attempt budget is spent).  Each
// reclaim freezes the flight recorder — a silent worker is an incident
// worth a black box.
func (p *Pool) reclaimer() {
	defer p.wg.Done()
	t := time.NewTicker(p.opts.LeaseReclaimEvery)
	defer t.Stop()
	for {
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
		for _, rc := range p.store.ReclaimExpired(time.Now().UTC(), p.opts.MaxAttempts) {
			p.logf("jobstore: lease on %s reclaimed from worker %s (attempt %d, token %d); %s",
				rc.JobID, rc.Worker, rc.Attempt, rc.Token,
				map[bool]string{true: "quarantined", false: "re-queued"}[rc.Quarantined])
			flight.Trigger("lease-reclaim", flight.TriggerInfo{
				Trace: rc.TraceID, Job: rc.JobID,
				Detail: fmt.Sprintf("lease on %s reclaimed from silent worker %s (attempt %d, token %d)",
					rc.JobID, rc.Worker, rc.Attempt, rc.Token),
				Extra: p.store.Get(rc.JobID),
			})
			if !rc.Quarantined {
				p.Enqueue(rc.JobID, time.Time{})
			}
		}
	}
}

// DefaultLeaseTTL is the lease duration granted when a worker does not
// request one.
func (p *Pool) DefaultLeaseTTL() time.Duration { return p.opts.DefaultLeaseTTL }

// MaxAttempts is the pool's quarantine threshold, shared with the
// lease-granting path so remote attempts spend the same budget.
func (p *Pool) MaxAttempts() int { return p.opts.MaxAttempts }

// Backoff exposes the retry backoff for the given attempt so remote
// failures re-queue on the same schedule as local ones.
func (p *Pool) Backoff(attempt int) time.Duration { return p.backoff(attempt) }

// sweeper periodically expires terminal jobs older than the TTL.  The
// first sweep runs immediately so jobs that aged out while the daemon
// was down are collected at startup, not one tick later.
func (p *Pool) sweeper() {
	defer p.wg.Done()
	every := p.opts.SweepEvery
	if every <= 0 {
		every = p.opts.TTL / 4
	}
	if every < time.Second {
		every = time.Second
	}
	if every > time.Minute {
		every = time.Minute
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		n, err := p.store.ExpireBefore(time.Now().UTC().Add(-p.opts.TTL))
		if err != nil {
			p.logf("jobstore: ttl sweep: %v", err)
		}
		if n > 0 {
			p.logf("jobstore: ttl sweep expired %d job(s) older than %s", n, p.opts.TTL)
		}
		select {
		case <-p.ctx.Done():
			return
		case <-t.C:
		}
	}
}

// jobTimer is a pending delayed enqueue, keeping its run time so a
// later Enqueue with an earlier deadline can pull it forward.
type jobTimer struct {
	t  *time.Timer
	at time.Time
}

// Enqueue schedules a job id for execution, not before notBefore
// (zero for immediately).  Enqueue is idempotent: an id already queued
// (ready or timer-pending) is not queued twice, and of two pending run
// times the earlier wins.
func (p *Pool) Enqueue(id string, notBefore time.Time) {
	delay := time.Until(notBefore)
	if delay <= 0 {
		p.push(id)
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || p.inReady[id] {
		return
	}
	if jt, ok := p.timers[id]; ok {
		if notBefore.Before(jt.at) && jt.t.Stop() {
			jt.at = notBefore
			jt.t.Reset(delay)
		}
		return
	}
	jt := &jobTimer{at: notBefore}
	jt.t = time.AfterFunc(delay, func() {
		p.mu.Lock()
		delete(p.timers, id)
		p.mu.Unlock()
		p.push(id)
	})
	p.timers[id] = jt
}

func (p *Pool) push(id string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stopped || p.inReady[id] {
		return
	}
	if jt, ok := p.timers[id]; ok && jt.t.Stop() {
		delete(p.timers, id)
	}
	p.inReady[id] = true
	p.ready = append(p.ready, id)
	p.cond.Signal()
}

// Stop halts intake, cancels in-flight attempts, and waits for the
// workers to drain.
func (p *Pool) Stop() {
	p.mu.Lock()
	if p.stopped {
		p.mu.Unlock()
		p.wg.Wait()
		return
	}
	p.stopped = true
	for id, jt := range p.timers {
		jt.t.Stop()
		delete(p.timers, id)
	}
	p.cond.Broadcast()
	p.mu.Unlock()
	p.cancel()
	p.wg.Wait()
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for len(p.ready) == 0 && !p.stopped {
			p.cond.Wait()
		}
		if p.stopped {
			p.mu.Unlock()
			return
		}
		id := p.ready[0]
		p.ready = p.ready[1:]
		delete(p.inReady, id)
		p.mu.Unlock()
		p.execute(id)
	}
}

// execute runs one attempt of one job and persists the outcome.  The
// outer recover contains panics from the *persistence* calls (e.g. an
// injected jobstore.wal.* fault in panic mode): the worker survives and
// the job — still `running` on disk — is re-enqueued by the next
// restart, exactly like a crash at that boundary.
func (p *Pool) execute(id string) {
	defer func() {
		if r := recover(); r != nil {
			p.reg.Add("jobstore.pool.panics", 1)
			p.logf("jobstore: pool: contained panic executing %s: %v", id, r)
		}
	}()
	job := p.store.Get(id)
	if job == nil || job.State != StateQueued {
		return
	}
	// Attempts are persisted at Start, so a job whose attempt hard-kills
	// the process (OOM, SIGKILL mid-run) comes back queued with its
	// budget already spent.  Quarantine it before claiming it again —
	// otherwise Start would increment past the cap on every restart and
	// the job would crash-loop the daemon forever.
	if job.Attempts >= p.opts.MaxAttempts {
		p.quarantine(id, &JobError{
			Message:  fmt.Sprintf("quarantined after %d crash-interrupted attempts", job.Attempts),
			Terminal: true,
			Attempt:  job.Attempts,
		}, "attempts exhausted at recovery")
		return
	}
	attempt, err := p.store.Start(id)
	if err != nil {
		p.logf("jobstore: pool: %v", err)
		return
	}
	job.Attempts = attempt

	res, runErr := p.runAttempt(job, attempt)
	if runErr == nil {
		if cerr := p.store.Complete(id, res); cerr != nil {
			// The result is computed but not durable; the store already
			// re-queued the job in memory, so a re-run (deterministic)
			// will produce it again.
			p.logf("jobstore: job %s: completion not persisted (%v); re-queued", id, cerr)
			p.Enqueue(id, time.Now().Add(p.backoff(attempt)))
		}
		return
	}

	jerr := NewJobError(runErr, attempt, spanIDOf(res))
	if jerr.Terminal {
		p.quarantine(id, jerr, "terminal error")
		return
	}
	if attempt >= p.opts.MaxAttempts {
		jerr.Terminal = true
		jerr.Message = fmt.Sprintf("quarantined after %d attempts: %s", attempt, jerr.Message)
		p.quarantine(id, jerr, "attempts exhausted")
		return
	}
	// Shutdown cancellation is not a real failure: leave the job queued
	// for the next process to pick up, without burning backoff time.
	if p.ctx.Err() != nil {
		if rerr := p.store.Retry(id, jerr, time.Time{}); rerr != nil {
			p.logf("jobstore: job %s: %v", id, rerr)
		}
		return
	}
	delay := p.backoff(attempt)
	next := time.Now().UTC().Add(delay)
	if rerr := p.store.Retry(id, jerr, next); rerr != nil {
		p.logf("jobstore: job %s: %v", id, rerr)
		return
	}
	p.logf("jobstore: job %s attempt %d failed (%v); retrying in %s", id, attempt, runErr, delay.Round(time.Millisecond))
	flight.LogEvent(flight.Event{Kind: "job", Name: "retry", Trace: job.TraceID,
		Detail: fmt.Sprintf("%s attempt %d: %s", id, attempt, jerr.Message)})
	if attempt+1 == p.opts.MaxAttempts {
		// The next attempt is the job's last: capture the process state
		// now, while the failure pattern is fresh in the ring.
		flight.Trigger("retry-escalation", flight.TriggerInfo{
			Trace: job.TraceID, Job: id,
			Detail: fmt.Sprintf("job %s entering final attempt %d/%d after: %s",
				id, attempt+1, p.opts.MaxAttempts, jerr.Message),
			Extra: p.store.Get(id),
		})
	}
	p.Enqueue(id, next)
}

// runAttempt invokes the Runner with panic containment: a panicking
// attempt becomes a retryable error, not a dead worker.
func (p *Pool) runAttempt(job *Job, attempt int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("attempt panicked: %v: %w", r, ErrRetryable)
		}
	}()
	return p.run(p.ctx, job, attempt)
}

func (p *Pool) quarantine(id string, jerr *JobError, why string) {
	if qerr := p.store.Quarantine(id, jerr); qerr != nil {
		p.logf("jobstore: job %s: %v", id, qerr)
		return
	}
	p.logf("jobstore: job %s failed (%s): %s", id, why, jerr.Message)
	job := p.store.Get(id)
	trace := ""
	if job != nil {
		trace = job.TraceID
	}
	flight.Trigger("job-quarantine", flight.TriggerInfo{
		Trace: trace, Job: id,
		Detail: fmt.Sprintf("job %s quarantined (%s): %s", id, why, jerr.Message),
		Extra:  job,
	})
}

// backoff computes the delay before retrying after the given attempt:
// base * 2^(attempt-1) capped at max, jittered into [d/2, d) so
// retries from a burst of failures spread out.
func (p *Pool) backoff(attempt int) time.Duration {
	d := p.opts.BackoffBase
	for i := 1; i < attempt && d < p.opts.BackoffMax; i++ {
		d *= 2
	}
	if d > p.opts.BackoffMax {
		d = p.opts.BackoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
}

func (p *Pool) logf(format string, args ...any) {
	if p.opts.Logf != nil {
		p.opts.Logf(format, args...)
	}
}

func spanIDOf(res *Result) uint64 {
	if res != nil {
		return res.SpanID
	}
	return 0
}
