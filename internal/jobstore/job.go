// Package jobstore is the durable asynchronous job subsystem behind
// polyprof serve's /v1/jobs API: a crash-safe store of profiling jobs
// persisted through an append-only write-ahead log with snapshot
// compaction, plus a bounded worker pool that executes jobs with
// per-job retry, exponential backoff and poison quarantine.
//
// Durability contract (see DESIGN.md for the full note):
//
//   - A job is *acknowledged* once Store.Submit returns nil: its submit
//     record has been appended to the WAL and fsynced.  Acknowledged
//     jobs survive kill -9 at any point — replay restores them.
//   - Jobs that were running at crash time are re-enqueued on restart
//     (the profiling pipeline is deterministic, so a re-run produces
//     the identical report).
//   - A job whose completion record reached the WAL is never re-run:
//     replay keeps the terminal state, so no job double-completes.
//   - Torn tail records and CRC-corrupt entries are skipped with a
//     logged warning during replay; everything before them is kept.
//
// What the WAL does NOT guarantee: records appended after the last
// successful fsync may be lost on power failure (the affected jobs were
// not yet acknowledged), and a corrupt snapshot loses the state it
// compacted (replay then falls back to whatever WAL generations are
// still on disk).
package jobstore

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"polyprof/internal/budget"
)

// State is a job's lifecycle state.
type State string

const (
	// StateQueued: submitted (or scheduled for retry) and waiting for a
	// worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing an attempt.
	StateRunning State = "running"
	// StateSucceeded: terminal; Result holds the report.
	StateSucceeded State = "succeeded"
	// StateFailed: terminal; the job was quarantined with its last
	// error after a terminal failure or exhausted attempts.
	StateFailed State = "failed"
)

// States lists every lifecycle state (for /v1/jobs?state= validation).
func States() []State {
	return []State{StateQueued, StateRunning, StateSucceeded, StateFailed}
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateSucceeded || s == StateFailed }

// Job kinds: a bundled workload by name, or a user-submitted program
// body in the internal/isa JSON encoding.
const (
	KindWorkload = "workload"
	KindProgram  = "program"
)

// Job is one profiling job.  Exactly one of Workload / Program is set:
// either a bundled workload name or a user-submitted program body in
// the internal/isa JSON encoding.  Program is []byte (base64 on the
// wire and in the WAL), not json.RawMessage: intake is deliberately
// lax, so the bytes must persist opaquely even when they are not valid
// JSON — the decode error then surfaces as the job's terminal failure.
type Job struct {
	ID string `json:"id"`
	// Kind is "workload" or "program".
	Kind     string `json:"kind"`
	Workload string `json:"workload,omitempty"`
	Program  []byte `json:"program,omitempty"`

	State State `json:"state"`
	// Attempts counts started executions (including one interrupted by
	// a crash); the pool quarantines the job once it reaches the
	// configured maximum.
	Attempts int `json:"attempts"`

	// CacheKey is the job's content address: the canonical SHA-256 of
	// (program, flags, budgets) computed at intake.  Succeeded jobs are
	// indexed by it so a duplicate submission returns the cached report
	// in O(1).  Empty when the submission was not canonicalizable (a
	// hostile body) or caching is disabled.
	CacheKey string `json:"cache_key,omitempty"`

	// EpochEvents, when positive, runs the job's attempts in streaming
	// mode: pass 2 pauses every EpochEvents dynamic instructions,
	// publishes a provisional report, and commits a resume checkpoint
	// through the WAL.  Part of the job spec, so every attempt — local
	// or remotely leased — uses the same epoch grid (epoch boundaries
	// are exact op-counter multiples, the invariant behind resume
	// exactness).
	EpochEvents uint64 `json:"epoch_events,omitempty"`

	// Optimize runs the schedule-application engine after analysis:
	// the attempt applies the suggested schedules, re-measures them
	// under the VM cycle/cache model, and the report carries an
	// "optimization" section.  Part of the job spec (and the cache key):
	// an optimized and an unoptimized run of the same program are
	// different jobs.
	Optimize bool `json:"optimize,omitempty"`

	// Lease is the volatile view of the job's outstanding remote lease
	// (worker, attempt, expiry — never the fencing token).  Like
	// Progress it is filled into Get clones and never persisted.
	Lease *LeaseView `json:"lease,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`
	// NextRunAt delays a retry (exponential backoff with jitter).
	NextRunAt time.Time `json:"next_run_at,omitempty"`

	// Error is the last failure (terminal when State == failed).
	Error *JobError `json:"error,omitempty"`
	// Result is the profiling outcome once State == succeeded.
	Result *Result `json:"result,omitempty"`

	// Progress is the live position of a running attempt (current stage,
	// events processed, expected total).  It is volatile: filled into
	// Get/List clones from the attached tracker while the job runs,
	// never stored on the canonical job and never WAL-persisted — after
	// a restart a recovered job reports no progress until its next
	// attempt starts.
	Progress *Progress `json:"progress,omitempty"`

	// TraceID is the request ID that submitted the job (the inbound
	// X-Request-ID when the client sent one), correlating the job's
	// lifecycle with serve request logs and flight-recorder bundles.
	TraceID string `json:"trace_id,omitempty"`
	// Trace is the persisted lifecycle trace: intake, WAL append, queue
	// wait, per-attempt lease, pipeline stage starts, retries and the
	// terminal transition, capped at MaxTraceEvents.  Unlike Progress it
	// is durable — stage events ride the WAL (unsynced; they survive
	// kill -9 via the OS page cache, and losing them on power failure
	// loses only diagnostics), so after a crash the trace names the
	// stage the process died in.
	Trace []TraceEvent `json:"trace,omitempty"`
}

// TraceEvent is one step of a job's persisted lifecycle trace.
type TraceEvent struct {
	At      time.Time `json:"at"`
	Event   string    `json:"event"`
	Stage   string    `json:"stage,omitempty"`
	Attempt int       `json:"attempt,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// WallNS carries the duration the event closes (queue-wait, the
	// terminal attempt's run time).
	WallNS int64 `json:"wall_ns,omitempty"`
}

// Lifecycle trace event names.
const (
	TraceIntake         = "intake"
	TraceWALAppend      = "wal-append"
	TraceQueueWait      = "queue-wait"
	TraceLease          = "lease"
	TraceStage          = "stage"
	TraceRetry          = "retry"
	TraceQuarantine     = "quarantine"
	TraceComplete       = "complete"
	TraceCrashRecovered = "crash-recovered"
	// TraceReclaim marks a lease the coordinator took back after its
	// TTL expired (worker killed, partitioned, or wedged).
	TraceReclaim = "lease-reclaimed"
	// TraceCacheHit marks a duplicate submission answered from this
	// job's content-addressed result — appended to the succeeded job,
	// so operators can see which cached reports still earn their keep.
	TraceCacheHit = "cache-hit"
	// TraceCheckpoint marks a streaming epoch checkpoint committed to
	// the WAL; TraceResume marks an attempt that restored from one
	// instead of starting at event zero.
	TraceCheckpoint = "checkpoint"
	TraceResume     = "checkpoint-resume"
)

// MaxTraceEvents caps a job's persisted trace; past it one truncation
// marker is kept and further events are dropped.
const MaxTraceEvents = 512

// CrashRecovered returns the crash-recovery marker when the job's
// latest lifecycle event is one — i.e. the job was running when the
// process died and Open just re-enqueued it.  The serving layer uses
// this to write a flight bundle for the interrupted attempt.
func (j *Job) CrashRecovered() (TraceEvent, bool) {
	if n := len(j.Trace); n > 0 && j.Trace[n-1].Event == TraceCrashRecovered {
		return j.Trace[n-1], true
	}
	return TraceEvent{}, false
}

// InterruptedStage returns the pipeline stage the job's most recent
// attempt had reached (from the last persisted stage event of the
// final attempt), for naming what a crash interrupted.
func (j *Job) InterruptedStage() string {
	for i := len(j.Trace) - 1; i >= 0; i-- {
		if j.Trace[i].Event == TraceStage {
			return j.Trace[i].Stage
		}
		if j.Trace[i].Event == TraceLease {
			break // attempt leased but no stage reached yet
		}
	}
	return ""
}

// Progress is a running job's live position.
type Progress struct {
	Stage  string `json:"stage"`
	Events uint64 `json:"events"`
	Total  uint64 `json:"total,omitempty"`
}

// Name is the job's display name: the workload, or the submitted
// program's name.
func (j *Job) Name() string {
	if j.Workload != "" {
		return j.Workload
	}
	var p struct {
		Name string `json:"name"`
	}
	if err := json.Unmarshal(j.Program, &p); err == nil && p.Name != "" {
		return p.Name
	}
	return "(program)"
}

// Clone deep-copies the job so store snapshots can leave the lock.
func (j *Job) Clone() *Job {
	c := *j
	if j.Error != nil {
		e := *j.Error
		c.Error = &e
	}
	if j.Result != nil {
		r := *j.Result
		c.Result = &r
	}
	if j.Progress != nil {
		p := *j.Progress
		c.Progress = &p
	}
	if j.Lease != nil {
		l := *j.Lease
		c.Lease = &l
	}
	if j.Trace != nil {
		c.Trace = append([]TraceEvent(nil), j.Trace...)
	}
	return &c
}

// Result is the persisted outcome of a succeeded job — the fields of a
// synchronous /v1/profile response that are worth keeping on disk (the
// full span tree stays in memory with the request that produced it;
// only the root span id is kept for correlation).
type Result struct {
	Status   string          `json:"status"`
	WallNS   int64           `json:"wall_ns"`
	Ops      uint64          `json:"ops,omitempty"`
	Degraded bool            `json:"degraded,omitempty"`
	Budget   []string        `json:"budget,omitempty"`
	SpanID   uint64          `json:"span_id,omitempty"`
	Report   json.RawMessage `json:"report,omitempty"`
}

// JobError is the structured failure attached to a job.
type JobError struct {
	Message string `json:"message"`
	// Terminal marks failures that retrying cannot fix (validation
	// errors, deterministic budget exhaustion); the pool quarantines
	// instead of retrying.
	Terminal bool `json:"terminal"`
	// Budget carries the structured *budget.Error when the failure was
	// a resource exhaustion.
	Budget *budget.Error `json:"budget,omitempty"`
	// SpanID correlates the failing attempt with its trace.
	SpanID uint64 `json:"span_id,omitempty"`
	// Attempt is the attempt number that produced this error.
	Attempt int `json:"attempt,omitempty"`
}

func (e *JobError) Error() string { return e.Message }

// ErrRetryable marks an error chain as transient: the pool retries it
// (until attempts run out) even though it is not a timeout.  Wrap with
// fmt.Errorf("...: %w", jobstore.ErrRetryable) or errors.Join.
var ErrRetryable = errors.New("retryable")

// Retryable classifies an execution error: wall-clock timeouts and
// cancellations are worth retrying (the machine was busy, the daemon
// was shutting down), as is anything explicitly marked ErrRetryable
// (panic recoveries, injected faults at persistence boundaries).
// Everything else — validation errors, deterministic step/event budget
// exhaustion — is terminal: the same program will fail the same way on
// every attempt.
func Retryable(err error) bool {
	if errors.Is(err, ErrRetryable) {
		return true
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	if be, ok := budget.AsError(err); ok {
		return be.Timeout() || be.Canceled()
	}
	return false
}

// NewJobError builds the persisted form of an execution error.
func NewJobError(err error, attempt int, spanID uint64) *JobError {
	je := &JobError{
		Message:  err.Error(),
		Terminal: !Retryable(err),
		SpanID:   spanID,
		Attempt:  attempt,
	}
	if be, ok := budget.AsError(err); ok {
		je.Budget = be
	}
	return je
}

// JobSummary is the list form served by GET /v1/jobs.
type JobSummary struct {
	ID        string    `json:"id"`
	Kind      string    `json:"kind"`
	Name      string    `json:"name"`
	State     State     `json:"state"`
	Attempts  int       `json:"attempts"`
	Submitted time.Time `json:"submitted_at"`
	Finished  time.Time `json:"finished_at,omitempty"`
	NextRunAt time.Time `json:"next_run_at,omitempty"`
	Error     string    `json:"error,omitempty"`
	Degraded  bool      `json:"degraded,omitempty"`
	WallNS    int64     `json:"wall_ns,omitempty"`
	TraceID   string    `json:"trace_id,omitempty"`
}

// Summary renders the job's list form.
func (j *Job) Summary() JobSummary {
	s := JobSummary{
		ID: j.ID, Kind: j.Kind, Name: j.Name(), State: j.State,
		Attempts: j.Attempts, Submitted: j.SubmittedAt,
		Finished: j.FinishedAt, NextRunAt: j.NextRunAt,
		TraceID: j.TraceID,
	}
	if j.Error != nil {
		s.Error = j.Error.Message
	}
	if j.Result != nil {
		s.Degraded = j.Result.Degraded
		s.WallNS = j.Result.WallNS
	}
	return s
}

// ParseState validates a state filter string.
func ParseState(s string) (State, error) {
	for _, st := range States() {
		if string(st) == s {
			return st, nil
		}
	}
	return "", fmt.Errorf("jobstore: unknown state %q (want queued|running|succeeded|failed)", s)
}
