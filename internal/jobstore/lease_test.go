package jobstore

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"polyprof/internal/obs"
)

func submitJob(t *testing.T, s *Store) *Job {
	t.Helper()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	return j
}

// expireLease forces the job's lease into the past so the reclaimer
// sees it as expired without the test sleeping out a real TTL.
func expireLease(s *Store, jobID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ls := s.leases[jobID]; ls != nil {
		ls.ExpiresAt = time.Now().UTC().Add(-time.Second)
	}
}

// TestLeaseGrantRenewComplete: the happy path — claim, heartbeat,
// report — leaves the job succeeded with the remote trace merged in.
func TestLeaseGrantRenewComplete(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s, _, err := Open(t.TempDir(), Options{Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := submitJob(t, s)

	lease, job, err := s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if lease.JobID != j.ID || lease.Attempt != 1 || lease.Token == 0 || lease.Worker != "w1" {
		t.Fatalf("lease = %+v", lease)
	}
	if job.State != StateRunning || job.Attempts != 1 {
		t.Fatalf("granted job = %+v", job)
	}
	if got := s.Get(j.ID); got.Lease == nil || got.Lease.Worker != "w1" {
		t.Fatalf("Get lease view = %+v", got.Lease)
	}

	renewed, err := s.RenewLease(j.ID, lease.Token, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !renewed.ExpiresAt.After(lease.ExpiresAt) {
		t.Fatalf("renew did not extend: %v -> %v", lease.ExpiresAt, renewed.ExpiresAt)
	}

	evs := []TraceEvent{{At: time.Now().UTC(), Event: TraceStage, Stage: "vm", Attempt: 1, Detail: "worker w1"}}
	res := &Result{Status: "ok", Report: json.RawMessage(`{"x":1}`)}
	if err := s.CompleteLease(j.ID, lease.Token, res, evs); err != nil {
		t.Fatal(err)
	}
	got := s.Get(j.ID)
	if got.State != StateSucceeded || got.Result == nil || string(got.Result.Report) != `{"x":1}` {
		t.Fatalf("job after lease completion = %+v", got)
	}
	if got.Lease != nil {
		t.Fatalf("terminal job still shows a lease: %+v", got.Lease)
	}
	foundRemoteStage := false
	for _, ev := range got.Trace {
		if ev.Event == TraceStage && ev.Stage == "vm" && ev.Detail == "worker w1" {
			foundRemoteStage = true
		}
	}
	if !foundRemoteStage {
		t.Fatalf("shipped remote stage event missing from trace: %+v", got.Trace)
	}
	if n := reg.Counter("jobs.leases.granted").Value(); n != 1 {
		t.Fatalf("jobs.leases.granted = %d", n)
	}
	if s.Leases() != 0 {
		t.Fatalf("leases outstanding after completion: %d", s.Leases())
	}
}

// TestLeaseAcquireOrderAndBackoffGate: claims hand out the oldest
// ready job and skip retries whose NextRunAt is still in the future.
func TestLeaseAcquireOrderAndBackoffGate(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j1 := submitJob(t, s)
	j2 := submitJob(t, s)

	// Push j1 into a delayed retry: it must not be claimable.
	if _, err := s.Start(j1.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Retry(j1.ID, &JobError{Message: "transient"}, time.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	lease, job, err := s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != j2.ID {
		t.Fatalf("claimed %s, want %s (j1 is backoff-gated)", job.ID, j2.ID)
	}
	if _, _, err := s.AcquireLease("w2", time.Second, 3); !errors.Is(err, ErrNoReadyJob) {
		t.Fatalf("second claim = %v, want ErrNoReadyJob", err)
	}
	_ = lease
}

// TestLeaseExpiredResultPostFenced: a worker that outlives its lease
// posts into a reclaimed job and must get ErrFenced — the re-queued
// job is untouched.
func TestLeaseExpiredResultPostFenced(t *testing.T) {
	reg := obs.NewRegistry()
	reg.SetEnabled(true)
	s, _, err := Open(t.TempDir(), Options{Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	j := submitJob(t, s)

	lease, _, err := s.AcquireLease("zombie", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	expireLease(s, j.ID)
	rcs := s.ReclaimExpired(time.Now().UTC(), 3)
	if len(rcs) != 1 || rcs[0].JobID != j.ID || rcs[0].Quarantined {
		t.Fatalf("reclaimed = %+v", rcs)
	}
	if got := s.Get(j.ID); got.State != StateQueued {
		t.Fatalf("job after reclaim = %s, want queued", got.State)
	}

	err = s.CompleteLease(j.ID, lease.Token, &Result{Status: "ok"}, nil)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie completion = %v, want ErrFenced", err)
	}
	if got := s.Get(j.ID); got.State != StateQueued || got.Result != nil {
		t.Fatalf("job mutated by fenced completion: %+v", got)
	}
	if _, err := s.FailLease(j.ID, lease.Token, &JobError{Message: "late"}, nil, 3, time.Time{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie failure post = %v, want ErrFenced", err)
	}
	if n := reg.Counter("jobs.leases.fenced").Value(); n == 0 {
		t.Fatal("jobs.leases.fenced not bumped")
	}
}

// TestLeaseDuplicateHeartbeatAfterReclaim: heartbeats under a
// reclaimed token fence; a fresh claim's heartbeat works.
func TestLeaseDuplicateHeartbeatAfterReclaim(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := submitJob(t, s)

	old, _, err := s.AcquireLease("w1", time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	expireLease(s, j.ID)
	if rcs := s.ReclaimExpired(time.Now().UTC(), 5); len(rcs) != 1 {
		t.Fatalf("reclaimed = %+v", rcs)
	}
	if _, err := s.RenewLease(j.ID, old.Token, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie heartbeat = %v, want ErrFenced", err)
	}
	fresh, _, err := s.AcquireLease("w2", time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Token <= old.Token {
		t.Fatalf("fence token not monotonic: %d then %d", old.Token, fresh.Token)
	}
	if _, err := s.RenewLease(j.ID, fresh.Token, time.Second); err != nil {
		t.Fatalf("fresh heartbeat = %v", err)
	}
	// The zombie's heartbeat still fences even while a live lease
	// exists — exact-token match, not just presence.
	if _, err := s.RenewLease(j.ID, old.Token, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-token heartbeat = %v, want ErrFenced", err)
	}
}

// TestLeaseReclaimQuarantinesAtMaxAttempts: a job whose attempts are
// spent when its lease expires quarantines instead of re-queueing.
func TestLeaseReclaimQuarantinesAtMaxAttempts(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := submitJob(t, s)

	for i := 0; i < 2; i++ {
		lease, _, err := s.AcquireLease("w1", time.Second, 2)
		if err != nil {
			t.Fatalf("claim %d: %v", i, err)
		}
		expireLease(s, j.ID)
		rcs := s.ReclaimExpired(time.Now().UTC(), 2)
		if len(rcs) != 1 {
			t.Fatalf("claim %d: reclaimed = %+v", i, rcs)
		}
		if i == 0 && rcs[0].Quarantined {
			t.Fatal("quarantined with attempts to spare")
		}
		if i == 1 && !rcs[0].Quarantined {
			t.Fatal("not quarantined at max attempts")
		}
		_ = lease
	}
	got := s.Get(j.ID)
	if got.State != StateFailed || got.Error == nil || !got.Error.Terminal {
		t.Fatalf("job after exhausted reclaims = %+v", got)
	}
}

// TestLeaseCoordinatorRestartRequeues: a coordinator restart kills
// every outstanding lease — replay re-queues the leased (running)
// jobs, fresh tokens fence stale ones, and the fence counter never
// regresses.
func TestLeaseCoordinatorRestartRequeues(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)
	j := submitJob(t, s)
	old, _, err := s.AcquireLease("w1", time.Minute, 5)
	if err != nil {
		t.Fatal(err)
	}
	oldFence := s.FenceToken()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if s2.Leases() != 0 {
		t.Fatalf("leases survived restart: %d", s2.Leases())
	}
	if s2.FenceToken() < oldFence {
		t.Fatalf("fence regressed across restart: %d -> %d", oldFence, s2.FenceToken())
	}
	found := false
	for _, r := range recovered {
		if r.ID == j.ID {
			found = true
		}
	}
	if !found {
		t.Fatalf("leased job not in recovered set: %+v", recovered)
	}
	if got := s2.Get(j.ID); got.State != StateQueued {
		t.Fatalf("leased job after restart = %s, want queued", got.State)
	}

	// The pre-restart worker is now a zombie: fenced on every call.
	if err := s2.CompleteLease(j.ID, old.Token, &Result{Status: "ok"}, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("pre-restart completion = %v, want ErrFenced", err)
	}
	if _, err := s2.RenewLease(j.ID, old.Token, time.Second); !errors.Is(err, ErrFenced) {
		t.Fatalf("pre-restart heartbeat = %v, want ErrFenced", err)
	}
	// Fresh grants fence above every pre-restart token.
	fresh, _, err := s2.AcquireLease("w2", time.Second, 5)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Token <= old.Token {
		t.Fatalf("post-restart token %d not above pre-restart %d", fresh.Token, old.Token)
	}
}

// TestLeaseTerminalNeverRegresses: a completion that reached the WAL
// wins against any later lease-holder call, even one with the exact
// token that completed it.
func TestLeaseTerminalNeverRegresses(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := submitJob(t, s)
	lease, _, err := s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteLease(j.ID, lease.Token, &Result{Status: "ok"}, nil); err != nil {
		t.Fatal(err)
	}
	// Duplicate result post (the worker retried after a slow ack).
	if err := s.CompleteLease(j.ID, lease.Token, &Result{Status: "ok"}, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("duplicate completion = %v, want ErrFenced", err)
	}
	if _, err := s.FailLease(j.ID, lease.Token, &JobError{Message: "late"}, nil, 3, time.Time{}); !errors.Is(err, ErrFenced) {
		t.Fatalf("failure after completion = %v, want ErrFenced", err)
	}
	if got := s.Get(j.ID); got.State != StateSucceeded {
		t.Fatalf("terminal state regressed: %s", got.State)
	}
}

// TestLeaseFailLeaseRetriesAndQuarantines: non-terminal failures
// re-queue with the given nextRun; terminal ones quarantine.
func TestLeaseFailLeaseRetriesAndQuarantines(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := submitJob(t, s)

	lease, _, err := s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	nextRun := time.Now().UTC().Add(time.Hour)
	requeued, err := s.FailLease(j.ID, lease.Token, &JobError{Message: "transient", Attempt: 1}, nil, 3, nextRun)
	if err != nil || !requeued {
		t.Fatalf("FailLease = requeued %v, err %v", requeued, err)
	}
	got := s.Get(j.ID)
	if got.State != StateQueued || !got.NextRunAt.Equal(nextRun) {
		t.Fatalf("job after retryable failure = %+v", got)
	}

	// The job is backoff-gated; pull NextRunAt forward to claim again.
	s.mu.Lock()
	s.jobs[j.ID].NextRunAt = time.Time{}
	s.mu.Unlock()
	lease, _, err = s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	requeued, err = s.FailLease(j.ID, lease.Token, &JobError{Message: "bad program", Terminal: true, Attempt: 2}, nil, 3, time.Time{})
	if err != nil || requeued {
		t.Fatalf("terminal FailLease = requeued %v, err %v", requeued, err)
	}
	if got := s.Get(j.ID); got.State != StateFailed {
		t.Fatalf("job after terminal failure = %s", got.State)
	}
}

// TestLeaseUnknownJobGone: calls against a never-submitted id are
// ErrLeaseGone (410), not fenced.
func TestLeaseUnknownJobGone(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	if _, err := s.RenewLease("job-999", 1, time.Second); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("renew unknown = %v, want ErrLeaseGone", err)
	}
	if err := s.CompleteLease("job-999", 1, &Result{Status: "ok"}, nil); !errors.Is(err, ErrLeaseGone) {
		t.Fatalf("complete unknown = %v, want ErrLeaseGone", err)
	}
}

// TestLeasedJobImmuneToDeleteAndTTL: satellite regression — a job
// holding a live lease can be neither deleted nor TTL-expired, even if
// store internals are poked into a shape the sweeper would collect.
func TestLeasedJobImmuneToDeleteAndTTL(t *testing.T) {
	s, _ := testOpen(t, t.TempDir())
	defer s.Close()
	j := submitJob(t, s)
	if _, _, err := s.AcquireLease("w1", time.Minute, 3); err != nil {
		t.Fatal(err)
	}

	if err := s.Delete(j.ID); !errors.Is(err, ErrJobActive) {
		t.Fatalf("delete of leased job = %v, want ErrJobActive", err)
	}
	// ExpireBefore only collects terminal jobs, so a leased (running)
	// job is already out of scope; the live-lease guard must hold even
	// if the job looks terminal (defense against future state bugs).
	s.mu.Lock()
	s.jobs[j.ID].FinishedAt = time.Now().Add(-time.Hour)
	s.mu.Unlock()
	if n, err := s.ExpireBefore(time.Now()); err != nil || n != 0 {
		t.Fatalf("ExpireBefore = %d, %v; want 0 leased jobs collected", n, err)
	}
	if got := s.Get(j.ID); got == nil {
		t.Fatal("leased job vanished")
	}
}

// TestLeaseCacheIndexOnRemoteCompletion: a CacheKey-carrying job
// completed through the lease path lands in the cache index, and the
// index survives restart.
func TestLeaseCacheIndexOnRemoteCompletion(t *testing.T) {
	dir := t.TempDir()
	s, _ := testOpen(t, dir)
	j := &Job{Kind: KindWorkload, Workload: "example1", CacheKey: "cafe01"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	lease, _, err := s.AcquireLease("w1", time.Second, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CompleteLease(j.ID, lease.Token, &Result{Status: "ok", Report: json.RawMessage(`{"r":1}`)}, nil); err != nil {
		t.Fatal(err)
	}
	if hit := s.LookupCache("cafe01"); hit == nil || hit.ID != j.ID {
		t.Fatalf("LookupCache = %+v", hit)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := testOpen(t, dir)
	defer s2.Close()
	if hit := s2.LookupCache("cafe01"); hit == nil || hit.ID != j.ID {
		t.Fatalf("cache index lost across restart: %+v", hit)
	}
}

// TestClampLeaseTTL pins the clamp behavior the HTTP layer depends on.
func TestClampLeaseTTL(t *testing.T) {
	cases := []struct {
		req, def, want time.Duration
	}{
		{0, 30 * time.Second, 30 * time.Second},
		{time.Millisecond, 30 * time.Second, MinLeaseTTL},
		{time.Hour, 30 * time.Second, MaxLeaseTTL},
		{5 * time.Second, 30 * time.Second, 5 * time.Second},
		{0, 0, MinLeaseTTL},
	}
	for _, c := range cases {
		if got := ClampLeaseTTL(c.req, c.def); got != c.want {
			t.Errorf("ClampLeaseTTL(%v, %v) = %v, want %v", c.req, c.def, got, c.want)
		}
	}
}
