package jobstore

import (
	"encoding/json"
	"fmt"
	"time"
)

// JobCheckpoint is the latest committed streaming epoch checkpoint of
// one job: the serialized core.Checkpoint plus enough metadata to
// answer "which epoch does a resumed attempt start from" without
// decoding the blob.  At most one is live per job (latest-wins); it is
// WAL-persisted, snapshot-carried, and deleted on the job's terminal
// transition.
type JobCheckpoint struct {
	JobID string `json:"job_id"`
	// Attempt is the attempt that committed the checkpoint.  Informative
	// only: the epoch grid is a property of the job spec, so any later
	// attempt may resume from it regardless of attempt number.
	Epoch   uint64    `json:"epoch"`
	Events  uint64    `json:"events"`
	Attempt int       `json:"attempt,omitempty"`
	At      time.Time `json:"at"`
	// Data is the serialized core.Checkpoint (opaque to the store).
	Data []byte `json:"data"`
}

// SaveCheckpoint commits a streaming epoch checkpoint for a running
// job.  When it returns nil the record is fsynced — the epoch is
// committed, and a SIGKILL'd or lease-reclaimed attempt will resume
// from it.  A checkpoint too large for one WAL record is skipped with
// a warning (resume then falls back to the previous committed epoch —
// strictly a performance loss, never a correctness one).
func (s *Store) SaveCheckpoint(ck *JobCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveCheckpointLocked(ck)
}

// SaveLeasedCheckpoint is SaveCheckpoint under a fencing token: the
// remote-worker path.  A worker whose lease was reclaimed (or whose
// job already completed elsewhere) gets ErrFenced and must abandon the
// attempt — its stale epochs never overwrite the current owner's.
func (s *Store) SaveLeasedCheckpoint(jobID string, token uint64, ck *JobCheckpoint) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := s.fenceCheckLocked(jobID, token); err != nil {
		return err
	}
	return s.saveCheckpointLocked(ck)
}

func (s *Store) saveCheckpointLocked(ck *JobCheckpoint) error {
	if ck == nil || ck.JobID == "" {
		return fmt.Errorf("jobstore: checkpoint without a job id")
	}
	j, ok := s.jobs[ck.JobID]
	if !ok {
		return fmt.Errorf("jobstore: unknown job %s", ck.JobID)
	}
	if j.State != StateRunning {
		return fmt.Errorf("jobstore: job %s is %s, not running; refusing checkpoint", ck.JobID, j.State)
	}
	if ck.At.IsZero() {
		ck.At = time.Now().UTC()
	}
	rec := record{T: "ckpt", Ckpt: ck}
	if payload, err := json.Marshal(rec); err != nil {
		return err
	} else if len(payload) > MaxWALRecord {
		s.logf("jobstore: job %s: epoch-%d checkpoint of %d bytes exceeds the %d-byte WAL record limit; skipping (resume falls back to epoch %d)",
			ck.JobID, ck.Epoch, len(payload), MaxWALRecord, s.ckptEpochLocked(ck.JobID))
		s.reg.Add("jobstore.checkpoint.oversize", 1)
		return nil
	}
	if err := s.appendLocked(rec); err != nil {
		return err
	}
	s.ckpts[ck.JobID] = ck
	s.reg.Add("jobstore.checkpoints", 1)
	// Mark the commit in the lifecycle trace (unsynced, like stage
	// events — the fsynced ckpt record above is the durable truth), so
	// ?trace=1 shows which epochs a crashed attempt had banked.
	if evs := traceAppend(j, TraceEvent{
		At: ck.At, Event: TraceCheckpoint, Attempt: ck.Attempt,
		Detail: fmt.Sprintf("committed epoch %d (%d events, %d bytes)", ck.Epoch, ck.Events, len(ck.Data)),
	}); len(evs) > 0 && s.wal != nil {
		if payload, err := json.Marshal(record{T: "trace", ID: ck.JobID, TraceEvents: evs}); err == nil {
			if err := s.wal.appendNoSync(payload); err == nil {
				s.appends++
			}
		}
	}
	return nil
}

func (s *Store) ckptEpochLocked(id string) uint64 {
	if ck := s.ckpts[id]; ck != nil {
		return ck.Epoch
	}
	return 0
}

// LoadCheckpoint returns the job's latest committed checkpoint, or nil
// when the job has none (never streamed, already terminal, or no epoch
// committed yet — the attempt then simply starts from event zero).
func (s *Store) LoadCheckpoint(id string) *JobCheckpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	ck := s.ckpts[id]
	if ck == nil {
		return nil
	}
	c := *ck
	c.Data = append([]byte(nil), ck.Data...)
	return &c
}

// NoteCacheHit appends a cache-hit lifecycle event to the succeeded
// job whose content-addressed result answered a duplicate submission.
// Persistence rides the WAL unsynced like stage events — diagnostics,
// not durable state.
func (s *Store) NoteCacheHit(id, detail string) {
	s.noteTrace(id, TraceEvent{
		At: time.Now().UTC(), Event: TraceCacheHit, Detail: detail,
	})
}

// NoteResume appends a checkpoint-resume lifecycle event: the given
// attempt restored from the committed checkpoint at epoch/events
// instead of starting at event zero.
func (s *Store) NoteResume(id string, attempt int, epoch, events uint64) {
	s.noteTrace(id, TraceEvent{
		At: time.Now().UTC(), Event: TraceResume, Attempt: attempt,
		Detail: fmt.Sprintf("resumed from committed epoch %d (%d events)", epoch, events),
	})
}

// noteTrace appends one lifecycle event through a "trace" WAL record —
// like NoteStage, but valid on terminal jobs too (a cache hit lands on
// a job that already succeeded).
func (s *Store) noteTrace(id string, ev TraceEvent) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || s.wal == nil {
		return
	}
	evs := traceAppend(j, ev)
	if len(evs) == 0 {
		return
	}
	payload, err := json.Marshal(record{T: "trace", ID: id, TraceEvents: evs})
	if err != nil {
		return
	}
	if err := s.wal.appendNoSync(payload); err != nil {
		s.logf("jobstore: job %s: trace record not persisted (%v); continuing", id, err)
		return
	}
	s.appends++
}

// ListPage returns one page of job summaries, newest submission first,
// optionally filtered by state ("" for all), plus the total number of
// matching jobs (for pagination headers).  offset/limit follow the
// usual convention; limit <= 0 means no cap.
func (s *Store) ListPage(state State, offset, limit int) ([]JobSummary, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []JobSummary
	total := 0
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if state != "" && j.State != state {
			continue
		}
		total++
		if total <= offset {
			continue
		}
		if limit > 0 && len(out) >= limit {
			continue
		}
		out = append(out, j.Summary())
	}
	return out, total
}
