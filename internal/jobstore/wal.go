package jobstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"polyprof/internal/faultinject"
	"polyprof/internal/obs"
)

// Fault points at every persistence boundary, so the chaos suite can
// prove a daemon killed mid-append, mid-fsync, mid-snapshot or
// mid-replay recovers without losing an acknowledged job.
var (
	walAppendFault = faultinject.Point("jobstore.wal.append")
	walSyncFault   = faultinject.Point("jobstore.wal.sync")
	snapshotFault  = faultinject.Point("jobstore.snapshot")
	replayFault    = faultinject.Point("jobstore.replay")
)

// WAL record framing: little-endian u32 payload length, u32 IEEE CRC32
// of the payload, then the payload bytes.  No record spans frames; a
// frame that does not fit the remaining file is a torn tail.
const (
	walHeaderSize = 8
	// MaxWALRecord bounds one record; a frame claiming more is treated
	// as corruption (a torn or overwritten length field), not an
	// instruction to allocate gigabytes.
	MaxWALRecord = 16 << 20
)

// wal is the append handle of one WAL generation file.
type wal struct {
	f   *os.File
	reg *obs.Registry
}

func openWAL(path string, reg *obs.Registry) (*wal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	return &wal{f: f, reg: reg}, nil
}

// append frames, writes and fsyncs one record.  The record is written
// with a single Write call so a crash tears at most the tail of this
// record, never an earlier one.
func (w *wal) append(payload []byte) error { return w.appendSync(payload, true) }

// appendNoSync frames and writes one record without fsyncing.  A
// successful write survives kill -9 (the OS page cache outlives the
// process) but not power failure — the framing for diagnostic records
// (stage-progress trace events) whose loss costs nothing durable, so
// they can ride the WAL at write() cost instead of fsync cost.  The
// next synced append flushes them as a side effect.
func (w *wal) appendNoSync(payload []byte) error { return w.appendSync(payload, false) }

func (w *wal) appendSync(payload []byte, sync bool) error {
	if err := walAppendFault.Hit(); err != nil {
		return fmt.Errorf("jobstore: wal append: %w", err)
	}
	if len(payload) > MaxWALRecord {
		return fmt.Errorf("jobstore: wal record of %d bytes exceeds the %d limit", len(payload), MaxWALRecord)
	}
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("jobstore: wal write: %w", err)
	}
	if !sync {
		if w.reg != nil {
			w.reg.Add("jobstore.wal.records", 1)
		}
		return nil
	}
	if err := walSyncFault.Hit(); err != nil {
		return fmt.Errorf("jobstore: wal sync: %w", err)
	}
	start := time.Now()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("jobstore: wal fsync: %w", err)
	}
	if w.reg != nil {
		w.reg.Observe("jobstore.wal.fsync_ns", uint64(time.Since(start)))
		w.reg.Add("jobstore.wal.records", 1)
	}
	return nil
}

func (w *wal) close() error { return w.f.Close() }

// replayWAL reads every intact record of the file at path, calling
// apply for each payload.  Corruption never aborts the replay:
//
//   - a CRC mismatch on a plausibly-framed record skips that record
//     with a warning and continues (a later fsynced record is still
//     good even if an earlier page was lost);
//   - a torn tail — truncated header, length beyond the remaining
//     bytes, or a length past MaxWALRecord — ends the replay with a
//     warning, keeping everything before it.
//
// It returns the byte offset of the last intact frame boundary, so the
// caller can truncate the torn tail before appending new records, and
// the number of records skipped or torn.
//
// The file is streamed one frame at a time, so replay memory stays
// bounded by MaxWALRecord even when repeated compaction failures have
// let a generation grow huge.  The payload slice passed to apply is
// reused between records; apply must not retain it (see copyOf).
func replayWAL(path string, apply func(payload []byte), warnf func(format string, args ...any)) (goodOffset int64, skipped int, err error) {
	if err := replayFault.Hit(); err != nil {
		return 0, 0, fmt.Errorf("jobstore: wal replay: %w", err)
	}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, 0, nil
		}
		return 0, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)
	var (
		off     int64
		header  [walHeaderSize]byte
		payload []byte
	)
	for {
		n, rerr := io.ReadFull(br, header[:])
		if rerr == io.EOF {
			return off, skipped, nil
		}
		if rerr == io.ErrUnexpectedEOF {
			warnf("jobstore: %s: torn record header at offset %d (%d trailing bytes); truncating", path, off, n)
			return off, skipped + 1, nil
		}
		if rerr != nil {
			return off, skipped, rerr
		}
		length := binary.LittleEndian.Uint32(header[0:4])
		sum := binary.LittleEndian.Uint32(header[4:8])
		if length > MaxWALRecord {
			warnf("jobstore: %s: torn record at offset %d (claims %d bytes); truncating", path, off, length)
			return off, skipped + 1, nil
		}
		if int(length) > cap(payload) {
			payload = make([]byte, length)
		}
		payload = payload[:length]
		n, rerr = io.ReadFull(br, payload)
		if rerr == io.EOF || rerr == io.ErrUnexpectedEOF {
			warnf("jobstore: %s: torn record at offset %d (claims %d bytes, %d remain); truncating", path, off, length, n)
			return off, skipped + 1, nil
		}
		if rerr != nil {
			return off, skipped, rerr
		}
		if crc32.ChecksumIEEE(payload) != sum {
			warnf("jobstore: %s: CRC mismatch at offset %d (%d bytes); skipping record", path, off, length)
			skipped++
		} else {
			apply(payload)
		}
		off += walHeaderSize + int64(length)
	}
}

// truncateTail drops a torn tail so new appends start at a clean frame
// boundary.
func truncateTail(path string, goodOffset int64) error {
	fi, err := os.Stat(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	if fi.Size() <= goodOffset {
		return nil
	}
	return os.Truncate(path, goodOffset)
}

// copyOf is a small helper for callers that must retain a payload past
// the replay callback.
func copyOf(b []byte) []byte {
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
