package jobstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"polyprof/internal/obs"
	"polyprof/internal/progress"
)

// record is the WAL envelope.  Every state transition of every job is
// one record; replay folds them, last writer wins per job.
type record struct {
	// T is the record type: "submit", "state", "stage", "trace",
	// "ckpt", "delete", or "hist".  "stage" records carry only
	// lifecycle trace events and are appended unsynced (diagnostics:
	// they survive kill -9 via the page cache, and losing them on power
	// failure loses no durable state).  "trace" records are the same
	// but apply to terminal jobs too (a cache hit lands on a job that
	// already succeeded).  "ckpt" records carry a streaming epoch
	// checkpoint, fsynced — "committed epoch" means exactly this append
	// survived.
	T string `json:"t"`
	// Job is the full job at submission time (T == "submit").
	Job *Job `json:"job,omitempty"`
	// ID/State/... describe a transition (T == "state").
	ID        string    `json:"id,omitempty"`
	State     State     `json:"state,omitempty"`
	Attempts  int       `json:"attempts,omitempty"`
	At        time.Time `json:"at,omitempty"`
	NextRunAt time.Time `json:"next_run_at,omitempty"`
	Error     *JobError `json:"error,omitempty"`
	Result    *Result   `json:"result,omitempty"`
	// TraceEvents are the lifecycle trace events this transition
	// appends to the job (T == "state" or "stage").
	TraceEvents []TraceEvent `json:"trace,omitempty"`
	// Fence is the fencing token granted with a lease transition
	// (T == "state" into running via AcquireLease); replay folds the
	// maximum so tokens stay monotonic across restarts.  Worker names
	// the node the lease went to (diagnostics only).
	Fence  uint64 `json:"fence,omitempty"`
	Worker string `json:"worker,omitempty"`
	// Hist is one request-history entry (T == "hist"), an opaque blob
	// owned by the serving layer.
	Hist json.RawMessage `json:"hist,omitempty"`
	// Ckpt is a streaming epoch checkpoint (T == "ckpt"); replay keeps
	// the latest per job.
	Ckpt *JobCheckpoint `json:"ckpt,omitempty"`
}

// traceAppend appends lifecycle events to the job's persisted trace,
// enforcing MaxTraceEvents (one truncation marker past the cap), and
// returns the events actually appended — the slice the caller embeds
// in the WAL record so replay reconstructs the same trace.
func traceAppend(j *Job, evs ...TraceEvent) []TraceEvent {
	var out []TraceEvent
	for _, ev := range evs {
		if len(j.Trace) >= MaxTraceEvents {
			if len(j.Trace) == MaxTraceEvents {
				mark := TraceEvent{At: ev.At, Event: "trace-truncated"}
				j.Trace = append(j.Trace, mark)
				out = append(out, mark)
			}
			break
		}
		j.Trace = append(j.Trace, ev)
		out = append(out, ev)
	}
	return out
}

// snapshot is the compacted on-disk state: everything the WAL records
// of earlier generations said, folded.
type snapshot struct {
	Gen     uint64            `json:"gen"`
	Seq     uint64            `json:"seq"`
	Fence   uint64            `json:"fence,omitempty"`
	Jobs    []*Job            `json:"jobs"`
	History []json.RawMessage `json:"history,omitempty"`
	// Checkpoints carries the live streaming checkpoints across
	// compaction (one per non-terminal streaming job).
	Checkpoints []*JobCheckpoint `json:"checkpoints,omitempty"`
}

// Options tunes a Store.
type Options struct {
	// SnapshotEvery compacts the WAL after this many appended records
	// (default 256; negative disables automatic compaction).
	SnapshotEvery int
	// MaxHistory bounds the persisted request-history entries kept in
	// memory and in snapshots (default 256).
	MaxHistory int
	// Registry receives job-state gauges, retry counters and the
	// WAL-fsync histogram (default obs.Default).
	Registry *obs.Registry
	// Logf receives replay warnings and lifecycle lines (nil to
	// disable).
	Logf func(format string, args ...any)
}

// Store is the durable job store: an in-memory map of jobs whose every
// transition is WAL-appended and fsynced before it is acknowledged.
// All methods are safe for concurrent use.
type Store struct {
	dir  string
	opts Options
	reg  *obs.Registry

	mu      sync.Mutex
	wal     *wal
	walPath string
	gen     uint64
	appends int // records since the last snapshot
	seq     uint64
	jobs    map[string]*Job
	order   []string // submission order
	history []json.RawMessage
	closed  bool

	// fence is the monotonic fencing-token counter behind leases; it is
	// WAL-carried on every grant and snapshot-persisted, so a token
	// granted after a restart always exceeds any granted before.
	fence uint64
	// leases holds the outstanding remote claims, keyed by job id.
	// Deliberately volatile: a restart invalidates every lease (the
	// leased jobs replay as running and are re-queued).
	leases map[string]*Lease
	// cache indexes succeeded jobs by their content-address (CacheKey),
	// rebuilt from the jobs map on open — a duplicate submission is
	// answered from here in O(1).
	cache map[string]string

	// trackers holds the live-progress sources of currently running
	// attempts, keyed by job id.  Deliberately volatile (never
	// WAL-persisted): progress is only meaningful within one attempt of
	// one process, so a restart starts from a clean slate.
	trackers map[string]*progress.Tracker

	// ckpts holds the latest committed streaming checkpoint per job id.
	// WAL-persisted and snapshot-carried — unlike progress, a
	// checkpoint is exactly the state that must outlive a crash —
	// and cleared the moment the job goes terminal.
	ckpts map[string]*JobCheckpoint
}

// Open loads (or initializes) a store under dir: it reads the latest
// snapshot, replays every surviving WAL generation on top of it,
// truncates any torn tail, and re-enqueues jobs that were running at
// crash time.  The returned recovered list holds the jobs needing
// (re-)execution — queued and formerly-running — in submission order.
func Open(dir string, opts Options) (*Store, []*Job, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = 256
	}
	if opts.MaxHistory <= 0 {
		opts.MaxHistory = 256
	}
	if opts.Registry == nil {
		opts.Registry = obs.Default
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	s := &Store{
		dir:      dir,
		opts:     opts,
		reg:      opts.Registry,
		jobs:     map[string]*Job{},
		trackers: map[string]*progress.Tracker{},
		leases:   map[string]*Lease{},
		cache:    map[string]string{},
		ckpts:    map[string]*JobCheckpoint{},
	}
	if err := s.load(); err != nil {
		return nil, nil, err
	}

	// Crash recovery: a job that was running when the daemon died goes
	// back to the queue — locally executing or remotely leased alike
	// (replay restores no lease, so every pre-crash lease is implicitly
	// revoked and its token fenced).  The re-run's report is identical
	// to an uninterrupted run because the pipeline is deterministic.
	var recovered []*Job
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State == StateSucceeded && j.CacheKey != "" {
			s.cache[j.CacheKey] = j.ID
		}
		if j.State == StateRunning {
			stage := j.InterruptedStage()
			detail := fmt.Sprintf("process died during attempt %d", j.Attempts)
			if stage != "" {
				detail += " in stage " + stage
			}
			traceAppend(j, TraceEvent{
				At: time.Now().UTC(), Event: TraceCrashRecovered,
				Stage: stage, Attempt: j.Attempts, Detail: detail,
			})
			j.State = StateQueued
			s.logf("jobstore: job %s was running at crash time; re-enqueued (attempt %d)", j.ID, j.Attempts)
		}
		if j.State == StateQueued {
			recovered = append(recovered, j.Clone())
		}
	}
	// Persist the re-enqueue so a crash before the next transition does
	// not replay stale running states, then open the next generation's
	// append handle via a compaction.
	if err := s.compactLocked(); err != nil {
		return nil, nil, err
	}
	s.publishGauges()
	return s, recovered, nil
}

// load reads snapshot + WAL generations into memory and opens the
// current generation for append.
func (s *Store) load() error {
	snapPath := filepath.Join(s.dir, "snapshot.json")
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			// A corrupt snapshot loses the state it compacted; WAL
			// generations still on disk are replayed below.
			s.logf("jobstore: %s is corrupt (%v); starting from the surviving WAL generations", snapPath, err)
			s.reg.Add("jobstore.snapshot.corrupt", 1)
		} else {
			s.gen = snap.Gen
			s.seq = snap.Seq
			s.fence = snap.Fence
			for _, j := range snap.Jobs {
				s.jobs[j.ID] = j
				s.order = append(s.order, j.ID)
			}
			s.history = snap.History
			for _, ck := range snap.Checkpoints {
				if ck != nil && ck.JobID != "" {
					s.ckpts[ck.JobID] = ck
				}
			}
		}
	} else if !os.IsNotExist(err) {
		return err
	}

	// Replay WAL generations >= the snapshot's, oldest first.  Older
	// generations already folded into the snapshot are ignored (a crash
	// between snapshot rename and old-WAL unlink leaves them behind).
	gens, err := s.walGenerations()
	if err != nil {
		return err
	}
	for _, g := range gens {
		path := s.walFile(g)
		if g < s.gen {
			continue
		}
		good, skipped, err := replayWAL(path, s.applyRecord, s.logf)
		if err != nil {
			return err
		}
		if skipped > 0 {
			s.reg.Add("jobstore.replay.skipped", uint64(skipped))
		}
		if err := truncateTail(path, good); err != nil {
			return err
		}
	}
	return nil
}

// applyRecord folds one replayed WAL record into memory.
func (s *Store) applyRecord(payload []byte) {
	var rec record
	if err := json.Unmarshal(payload, &rec); err != nil {
		s.logf("jobstore: skipping undecodable WAL record (%v)", err)
		s.reg.Add("jobstore.replay.skipped", 1)
		return
	}
	switch rec.T {
	case "submit":
		if rec.Job == nil || rec.Job.ID == "" {
			return
		}
		if _, ok := s.jobs[rec.Job.ID]; !ok {
			s.order = append(s.order, rec.Job.ID)
		}
		s.jobs[rec.Job.ID] = rec.Job
		if n := jobSeq(rec.Job.ID); n > s.seq {
			s.seq = n
		}
	case "state":
		// Fencing tokens must stay monotonic across restarts even when
		// the job the grant referred to is gone or terminal.
		if rec.Fence > s.fence {
			s.fence = rec.Fence
		}
		j, ok := s.jobs[rec.ID]
		if !ok {
			s.logf("jobstore: state record for unknown job %s; skipping", rec.ID)
			return
		}
		if j.State.Terminal() {
			// Never regress a terminal job: this is what makes replay
			// idempotent and forbids double-completion.
			return
		}
		traceAppend(j, rec.TraceEvents...)
		j.State = rec.State
		if rec.Attempts > 0 {
			j.Attempts = rec.Attempts
		}
		j.NextRunAt = rec.NextRunAt
		j.Error = rec.Error
		j.Result = rec.Result
		switch rec.State {
		case StateRunning:
			j.StartedAt = rec.At
		case StateSucceeded, StateFailed:
			j.FinishedAt = rec.At
			delete(s.ckpts, rec.ID)
		}
	case "stage":
		j, ok := s.jobs[rec.ID]
		if !ok || j.State.Terminal() {
			return
		}
		traceAppend(j, rec.TraceEvents...)
	case "trace":
		// Unlike "stage", trace records land on terminal jobs too: a
		// cache hit is an event on a job that already succeeded.
		j, ok := s.jobs[rec.ID]
		if !ok {
			return
		}
		traceAppend(j, rec.TraceEvents...)
	case "ckpt":
		if rec.Ckpt == nil || rec.Ckpt.JobID == "" {
			return
		}
		if j, ok := s.jobs[rec.Ckpt.JobID]; !ok || j.State.Terminal() {
			return
		}
		// Latest-wins in replay order: a later record is a later commit
		// (a retry that restarted from scratch rightfully resets to its
		// own, earlier epochs).
		s.ckpts[rec.Ckpt.JobID] = rec.Ckpt
	case "delete":
		if _, ok := s.jobs[rec.ID]; !ok {
			return
		}
		delete(s.jobs, rec.ID)
		delete(s.ckpts, rec.ID)
		s.dropOrder(rec.ID)
	case "hist":
		s.pushHistory(rec.Hist)
	default:
		s.logf("jobstore: unknown WAL record type %q; skipping", rec.T)
	}
}

func (s *Store) dropOrder(id string) {
	for i, o := range s.order {
		if o == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			return
		}
	}
}

func jobSeq(id string) uint64 {
	n, _ := strconv.ParseUint(strings.TrimPrefix(id, "job-"), 10, 64)
	return n
}

func (s *Store) walFile(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal.%06d.log", gen))
}

// walGenerations lists the on-disk WAL generation numbers, sorted.
func (s *Store) walGenerations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, err
	}
	var gens []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, "wal.") || !strings.HasSuffix(name, ".log") {
			continue
		}
		g, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal."), ".log"), 10, 64)
		if err != nil {
			continue
		}
		gens = append(gens, g)
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// append writes one record through the WAL (fsynced) and triggers
// compaction when due.  Callers hold s.mu.
func (s *Store) appendLocked(rec record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if s.wal == nil {
		return fmt.Errorf("jobstore: store is closed")
	}
	if err := s.wal.append(payload); err != nil {
		return err
	}
	s.appends++
	if s.opts.SnapshotEvery > 0 && s.appends >= s.opts.SnapshotEvery {
		if err := s.compactLocked(); err != nil {
			// Compaction failure is not fatal: the WAL keeps growing
			// and keeps every record, so durability is unaffected.
			s.logf("jobstore: snapshot compaction failed: %v", err)
			s.appends = 0
		}
	}
	return nil
}

// compactLocked writes a snapshot of the current state and rolls the
// WAL to the next generation:
//
//  1. create the next generation's (empty) WAL file,
//  2. atomically replace snapshot.json (tmp + fsync + rename),
//  3. switch appends to the new generation and unlink old WAL files.
//
// A crash between any of these steps recovers: before (2) the old
// snapshot + old WALs are authoritative (the new empty WAL replays as
// nothing); after (2) the new snapshot covers everything and leftover
// old WALs are ignored by generation.
func (s *Store) compactLocked() error {
	if err := snapshotFault.Hit(); err != nil {
		return fmt.Errorf("jobstore: snapshot: %w", err)
	}
	nextGen := s.gen + 1
	nw, err := openWAL(s.walFile(nextGen), s.reg)
	if err != nil {
		return err
	}

	snap := snapshot{Gen: nextGen, Seq: s.seq, Fence: s.fence, History: s.history}
	for _, id := range s.order {
		snap.Jobs = append(snap.Jobs, s.jobs[id])
		if ck := s.ckpts[id]; ck != nil {
			snap.Checkpoints = append(snap.Checkpoints, ck)
		}
	}
	data, err := json.Marshal(&snap)
	if err != nil {
		nw.close()
		return err
	}
	snapPath := filepath.Join(s.dir, "snapshot.json")
	tmp := snapPath + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		nw.close()
		return err
	}
	if err := os.Rename(tmp, snapPath); err != nil {
		nw.close()
		return err
	}
	// Make the new generation's file creation and the snapshot rename
	// durable before unlinking the old generations: without the
	// directory fsync, a power failure could persist the unlinks but not
	// the rename, losing acknowledged jobs.
	if err := syncDir(s.dir); err != nil {
		nw.close()
		return err
	}

	oldGen := s.gen
	if s.wal != nil {
		s.wal.close()
	}
	s.wal, s.walPath, s.gen, s.appends = nw, s.walFile(nextGen), nextGen, 0
	// Old generations are now folded into the snapshot; best-effort
	// cleanup (leftovers are ignored by generation on the next open).
	if gens, err := s.walGenerations(); err == nil {
		for _, g := range gens {
			if g <= oldGen {
				os.Remove(s.walFile(g))
			}
		}
	}
	s.reg.Add("jobstore.snapshots", 1)
	return nil
}

// syncDir fsyncs a directory so the entry operations inside it (file
// creations, renames) are durable, not just the file contents.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Submit persists a new job and acknowledges it: when Submit returns
// nil the job's submit record is on disk (fsynced) and will survive
// kill -9.  The job's ID and initial state are filled in.
func (s *Store) Submit(j *Job) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	j.ID = fmt.Sprintf("job-%d", s.seq)
	j.State = StateQueued
	j.SubmittedAt = time.Now().UTC()
	// The submit record carries the full job, trace included, so these
	// two events are durable the moment the submission is acknowledged.
	traceAppend(j,
		TraceEvent{At: j.SubmittedAt, Event: TraceIntake, Detail: j.Name()},
		TraceEvent{At: j.SubmittedAt, Event: TraceWALAppend})
	if err := s.appendLocked(record{T: "submit", Job: j}); err != nil {
		// Not acknowledged: forget the job (and give the sequence
		// number up; ids are unique, not dense).
		return err
	}
	s.jobs[j.ID] = j.Clone()
	s.order = append(s.order, j.ID)
	s.reg.Add("jobs.submitted", 1)
	s.publishGauges()
	return nil
}

// Start claims a queued job for execution, incrementing its attempt
// counter.  It fails if the job is not queued (double-dispatch guard).
// A WAL append failure does not block the attempt: the in-memory state
// advances and the next transition will persist it — at worst a crash
// replays the job as queued and it re-runs, which is the safe
// direction.
func (s *Store) Start(id string) (attempt int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return 0, fmt.Errorf("jobstore: unknown job %s", id)
	}
	if j.State != StateQueued {
		return 0, fmt.Errorf("jobstore: job %s is %s, not queued", id, j.State)
	}
	now := time.Now().UTC()
	// Queue wait: from when the job last became eligible — submission,
	// the scheduled retry time, or its latest lifecycle event (a retry
	// without backoff), whichever is latest.
	base := j.SubmittedAt
	if j.NextRunAt.After(base) {
		base = j.NextRunAt
	}
	if n := len(j.Trace); n > 0 && j.Trace[n-1].At.After(base) {
		base = j.Trace[n-1].At
	}
	wait := now.Sub(base)
	if wait < 0 {
		wait = 0
	}
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = now
	j.NextRunAt = time.Time{}
	evs := traceAppend(j,
		TraceEvent{At: now, Event: TraceQueueWait, Attempt: j.Attempts, WallNS: int64(wait)},
		TraceEvent{At: now, Event: TraceLease, Attempt: j.Attempts})
	if werr := s.appendLocked(record{
		T: "state", ID: id, State: StateRunning, Attempts: j.Attempts, At: j.StartedAt,
		TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: start record not persisted (%v); continuing", id, werr)
	}
	s.publishGauges()
	return j.Attempts, nil
}

// Complete marks a job succeeded.  When Complete returns nil the
// completion record is fsynced: a restart will serve the result from
// disk and never re-run the job.  On append failure the job is
// re-queued in memory (err is returned) so a re-run — deterministic —
// can complete it later.
func (s *Store) Complete(id string, res *Result) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobstore: unknown job %s", id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("jobstore: job %s already %s; refusing double completion", id, j.State)
	}
	now := time.Now().UTC()
	evs := traceAppend(j, TraceEvent{
		At: now, Event: TraceComplete, Attempt: j.Attempts, WallNS: res.WallNS,
	})
	if err := s.appendLocked(record{
		T: "state", ID: id, State: StateSucceeded, At: now, Result: res, TraceEvents: evs,
	}); err != nil {
		j.Trace = j.Trace[:len(j.Trace)-len(evs)]
		j.State = StateQueued
		s.publishGauges()
		return err
	}
	j.State = StateSucceeded
	j.FinishedAt = now
	j.Result = res
	j.Error = nil
	if j.CacheKey != "" {
		s.cache[j.CacheKey] = j.ID
	}
	delete(s.trackers, id)
	delete(s.ckpts, id)
	s.reg.Add("jobs.completed", 1)
	s.publishGauges()
	return nil
}

// LookupCache returns the succeeded job holding the content-addressed
// result for key, or nil — the O(1) answer to a duplicate submission.
func (s *Store) LookupCache(key string) *Job {
	if key == "" {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, ok := s.cache[key]
	if !ok {
		return nil
	}
	j, ok := s.jobs[id]
	if !ok || j.State != StateSucceeded || j.Result == nil {
		delete(s.cache, key)
		return nil
	}
	return j.Clone()
}

// Retry re-queues a failed attempt for execution at nextRun (backoff).
// Persistence is best-effort: losing the record merely replays the job
// as running → re-enqueued, which is where we are anyway.
func (s *Store) Retry(id string, jerr *JobError, nextRun time.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobstore: unknown job %s", id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("jobstore: job %s already %s", id, j.State)
	}
	j.State = StateQueued
	j.Error = jerr
	j.NextRunAt = nextRun
	detail := ""
	if jerr != nil {
		detail = jerr.Message
	}
	evs := traceAppend(j, TraceEvent{
		At: time.Now().UTC(), Event: TraceRetry, Attempt: j.Attempts, Detail: detail,
	})
	if werr := s.appendLocked(record{
		T: "state", ID: id, State: StateQueued, Attempts: j.Attempts,
		Error: jerr, NextRunAt: nextRun, TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: retry record not persisted (%v); continuing", id, werr)
	}
	s.reg.Add("jobs.retries", 1)
	s.publishGauges()
	return nil
}

// Quarantine marks a job terminally failed (poison or terminal error),
// keeping its last error and span id.
func (s *Store) Quarantine(id string, jerr *JobError) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobstore: unknown job %s", id)
	}
	if j.State.Terminal() {
		return fmt.Errorf("jobstore: job %s already %s", id, j.State)
	}
	now := time.Now().UTC()
	j.State = StateFailed
	j.Error = jerr
	j.FinishedAt = now
	detail := ""
	if jerr != nil {
		detail = jerr.Message
	}
	evs := traceAppend(j, TraceEvent{
		At: now, Event: TraceQuarantine, Attempt: j.Attempts, Detail: detail,
	})
	if werr := s.appendLocked(record{
		T: "state", ID: id, State: StateFailed, Attempts: j.Attempts, At: now, Error: jerr,
		TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: quarantine record not persisted (%v); continuing", id, werr)
	}
	delete(s.trackers, id)
	delete(s.ckpts, id)
	s.reg.Add("jobs.quarantined", 1)
	s.publishGauges()
	return nil
}

// ErrUnknownJob and ErrJobActive classify Delete failures so the
// serving layer can map them to 404 / 409.
var (
	ErrUnknownJob = errors.New("unknown job")
	ErrJobActive  = errors.New("job is not terminal")
)

// Delete removes a terminal (succeeded or failed) job.  The deletion
// is WAL-logged before it is acknowledged, so it survives restarts and
// replay never resurrects the job.  Queued and running jobs cannot be
// deleted — cancel-by-delete would race the worker pool's claim; the
// caller must wait for a terminal state.
func (s *Store) Delete(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.deleteLocked(id)
}

func (s *Store) deleteLocked(id string) error {
	j, ok := s.jobs[id]
	if !ok {
		return fmt.Errorf("jobstore: %w: %s", ErrUnknownJob, id)
	}
	// A job holding a live lease is remote-running work: deleting (or
	// TTL-expiring) it out from under the worker would turn the
	// worker's result post into a resurrection race.  Leased jobs are
	// StateRunning so the terminal check already refuses them; this
	// guard keeps the invariant even if a future state ever detaches
	// lease lifetime from the running state.
	if s.leases[id] != nil {
		return fmt.Errorf("jobstore: %w: %s holds a live lease", ErrJobActive, id)
	}
	if !j.State.Terminal() {
		return fmt.Errorf("jobstore: %w: %s is %s", ErrJobActive, id, j.State)
	}
	if err := s.appendLocked(record{T: "delete", ID: id}); err != nil {
		return err
	}
	delete(s.jobs, id)
	delete(s.trackers, id)
	delete(s.ckpts, id)
	if j.CacheKey != "" && s.cache[j.CacheKey] == id {
		delete(s.cache, j.CacheKey)
	}
	s.dropOrder(id)
	s.reg.Add("jobs.deleted", 1)
	s.publishGauges()
	return nil
}

// ExpireBefore deletes every terminal job that finished before cutoff
// (the TTL sweep) and returns how many were removed.  Each deletion is
// WAL-logged; a failure stops the sweep early (the next tick retries).
func (s *Store) ExpireBefore(cutoff time.Time) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var expired []string
	for _, id := range s.order {
		j := s.jobs[id]
		// Never sweep a job holding a live lease, whatever its state —
		// the remote worker still owns it (see deleteLocked).
		if s.leases[id] != nil {
			continue
		}
		if j.State.Terminal() && !j.FinishedAt.IsZero() && j.FinishedAt.Before(cutoff) {
			expired = append(expired, id)
		}
	}
	n := 0
	for _, id := range expired {
		if err := s.deleteLocked(id); err != nil {
			return n, err
		}
		n++
	}
	if n > 0 {
		s.reg.Add("jobs.expired", uint64(n))
	}
	return n, nil
}

// AttachProgress registers the live-progress source for the job's
// current attempt; Get fills it into the job while it is running.
// The registration is in-memory only — DetachProgress (or any terminal
// transition) removes it, and restarts never resurrect it.
func (s *Store) AttachProgress(id string, tr *progress.Tracker) {
	if tr == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.trackers[id] = tr
}

// DetachProgress removes the job's live-progress source.
func (s *Store) DetachProgress(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.trackers, id)
}

// NoteStage persists a stage-progress lifecycle event for a running
// job.  The WAL append is deliberately unsynced: a write() survives
// kill -9 through the OS page cache, which is exactly the failure this
// record diagnoses (naming the stage a crash interrupted), while an
// fsync per pipeline stage would tax every job for diagnostics.  Power
// failure may lose the record — losing only the stage name, never
// durable state.
func (s *Store) NoteStage(id, stage string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok || j.State != StateRunning || s.wal == nil {
		return
	}
	evs := traceAppend(j, TraceEvent{
		At: time.Now().UTC(), Event: TraceStage, Stage: stage, Attempt: j.Attempts,
	})
	if len(evs) == 0 {
		return
	}
	payload, err := json.Marshal(record{T: "stage", ID: id, TraceEvents: evs})
	if err != nil {
		return
	}
	if err := s.wal.appendNoSync(payload); err != nil {
		s.logf("jobstore: job %s: stage record not persisted (%v); continuing", id, err)
		return
	}
	s.appends++
}

// liveProgress builds the volatile Progress view of a running job, or
// nil.  Callers hold s.mu; the tracker itself is lock-free.
func (s *Store) liveProgress(j *Job) *Progress {
	if j.State != StateRunning {
		return nil
	}
	tr := s.trackers[j.ID]
	if tr == nil {
		return nil
	}
	snap := tr.Snapshot()
	return &Progress{Stage: snap.Stage, Events: snap.Events, Total: snap.Total}
}

// Get returns a copy of the job, or nil.  While the job is running and
// a progress tracker is attached, the copy carries the live Progress.
func (s *Store) Get(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	c := j.Clone()
	c.Progress = s.liveProgress(j)
	if ls := s.leases[id]; ls != nil {
		c.Lease = &LeaseView{Worker: ls.Worker, Attempt: ls.Attempt, ExpiresAt: ls.ExpiresAt}
	}
	return c
}

// List returns job summaries, newest submission first, optionally
// filtered by state ("" for all).
func (s *Store) List(state State) []JobSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobSummary, 0, len(s.order))
	for i := len(s.order) - 1; i >= 0; i-- {
		j := s.jobs[s.order[i]]
		if state != "" && j.State != state {
			continue
		}
		out = append(out, j.Summary())
	}
	return out
}

// AppendHistory persists one request-history entry (an opaque blob
// owned by the serving layer) through the WAL.
func (s *Store) AppendHistory(blob json.RawMessage) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.appendLocked(record{T: "hist", Hist: blob}); err != nil {
		return err
	}
	s.pushHistory(blob)
	return nil
}

func (s *Store) pushHistory(blob json.RawMessage) {
	if len(blob) == 0 {
		return
	}
	s.history = append(s.history, blob)
	if len(s.history) > s.opts.MaxHistory {
		s.history = s.history[len(s.history)-s.opts.MaxHistory:]
	}
}

// History returns the persisted request-history blobs, oldest first.
func (s *Store) History() []json.RawMessage {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]json.RawMessage, len(s.history))
	copy(out, s.history)
	return out
}

// Counts returns the number of jobs per state.
func (s *Store) Counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.countsLocked()
}

func (s *Store) countsLocked() map[State]int {
	counts := map[State]int{}
	for _, j := range s.jobs {
		counts[j.State]++
	}
	return counts
}

// publishGauges pushes the per-state job gauges.  Callers hold s.mu.
func (s *Store) publishGauges() {
	counts := s.countsLocked()
	for _, st := range States() {
		s.reg.SetGauge("jobs."+string(st), int64(counts[st]))
	}
	s.reg.SetGauge("jobs.leases", int64(len(s.leases)))
}

// Snapshot forces a compaction (tests, shutdown).
func (s *Store) Snapshot() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// Close compacts and releases the WAL handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.compactLocked()
	if s.wal != nil {
		s.wal.close()
		s.wal = nil
	}
	return err
}

// Dir returns the store's data directory.
func (s *Store) Dir() string { return s.dir }
