package jobstore

import (
	"context"
	"fmt"
	"testing"
	"time"

	"polyprof/internal/faultinject"
	"polyprof/internal/obs"
)

// deterministicReport is what the chaos runner "computes" for a job:
// re-running a job after a crash must reproduce it bit for bit, which
// is exactly the property the real pipeline has.
func deterministicReport(j *Job) string {
	return fmt.Sprintf(`{"workload":%q,"len":%d}`, j.Workload, len(j.Workload))
}

func chaosRunner(_ context.Context, job *Job, attempt int) (*Result, error) {
	return &Result{Status: "ok", Report: []byte(deterministicReport(job))}, nil
}

// chaosSubmit submits one job, absorbing injected errors and panics.
// It returns the job id when — and only when — the submit was
// acknowledged; injected failures return "".
func chaosSubmit(t *testing.T, s *Store, p *Pool) (id string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Logf("submit panicked (injected): %v", r)
			id = ""
		}
	}()
	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Logf("submit rejected (injected): %v", err)
		return ""
	}
	p.Enqueue(j.ID, time.Time{})
	return j.ID
}

// TestChaosEveryJobstoreFaultPoint is the crash-recovery proof the
// issue demands: every jobstore fault point is armed with a fatal mode
// while a store+pool runs real traffic, the "process" then dies without
// a clean close, and after reopening
//
//   - every acknowledged job still exists,
//   - every acknowledged job eventually reaches `succeeded` exactly
//     once (terminal states never regress ⇒ no double-completion), and
//   - its persisted report is identical to an uninterrupted run's.
func TestChaosEveryJobstoreFaultPoint(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	dir := t.TempDir()
	acked := map[string]bool{}

	specs := []string{}
	for _, point := range []string{"jobstore.wal.append", "jobstore.wal.sync", "jobstore.snapshot", "jobstore.replay"} {
		for _, mode := range []string{"error", "panic"} {
			specs = append(specs, fmt.Sprintf("%s=%s:chaos:1", point, mode))
		}
	}

	open := func() (*Store, []*Job) {
		s, recovered, err := Open(dir, Options{SnapshotEvery: 6, Registry: obs.NewRegistry(), Logf: t.Logf})
		if err != nil {
			// An injected replay fault fails the open once and then
			// self-disarms; the retry must succeed — the operator's
			// restart loop.
			t.Logf("open failed (injected): %v; retrying", err)
			s, recovered, err = Open(dir, Options{SnapshotEvery: 6, Registry: obs.NewRegistry(), Logf: t.Logf})
			if err != nil {
				t.Fatalf("reopen after injected replay fault: %v", err)
			}
		}
		return s, recovered
	}

	for round, spec := range specs {
		// The replay fault must be armed BEFORE Open to fire at all.
		preArm := round%2 == 0
		if preArm {
			if err := faultinject.ArmString(spec); err != nil {
				t.Fatal(err)
			}
		}
		s, recovered := open()
		pool := NewPool(s, chaosRunner, PoolOptions{
			Workers: 2, MaxAttempts: 10,
			BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
			Registry: obs.NewRegistry(), Logf: t.Logf,
		})
		pool.Start(recovered)

		if id := chaosSubmit(t, s, pool); id != "" {
			acked[id] = true
		}
		if !preArm {
			if err := faultinject.ArmString(spec); err != nil {
				t.Fatal(err)
			}
		}
		// Traffic across the armed point: submits, executions, and a
		// forced compaction all cross WAL boundaries.
		for i := 0; i < 4; i++ {
			if id := chaosSubmit(t, s, pool); id != "" {
				acked[id] = true
			}
		}
		func() {
			defer func() { recover() }()
			if err := s.Snapshot(); err != nil {
				t.Logf("snapshot failed (injected): %v", err)
			}
		}()
		time.Sleep(5 * time.Millisecond)
		pool.Stop()
		// Crash: no s.Close() — the WAL is left exactly as the last
		// fsync (or injected failure) left it.
		faultinject.DisarmAll()
	}

	// Final recovery: reopen cleanly and drain everything.
	s, recovered := open()
	defer s.Close()
	pool := NewPool(s, chaosRunner, PoolOptions{
		Workers: 2, MaxAttempts: 10,
		BackoffBase: time.Millisecond, BackoffMax: 4 * time.Millisecond,
		Registry: obs.NewRegistry(), Logf: t.Logf,
	})
	pool.Start(recovered)
	defer pool.Stop()

	if len(acked) == 0 {
		t.Fatal("chaos run acknowledged no jobs at all")
	}
	for id := range acked {
		j := waitTerminal(t, s, id)
		if j.State != StateSucceeded {
			t.Fatalf("acknowledged job %s ended %s (%+v)", id, j.State, j.Error)
		}
		if got, want := string(j.Result.Report), deterministicReport(j); got != want {
			t.Fatalf("job %s report diverged after recovery:\n got %s\nwant %s", id, got, want)
		}
	}
	// No phantom jobs: everything listed traces back to an acknowledged
	// submit or was an unacknowledged submit that legitimately survived
	// (written but not fsynced when the fault hit) — either way every
	// listed job must be internally consistent.
	for _, sum := range s.List("") {
		if sum.State == StateSucceeded && sum.Attempts == 0 {
			t.Fatalf("job %s succeeded with zero attempts", sum.ID)
		}
	}
}

// TestChaosSnapshotFaultDoesNotLoseRecords: a failing compaction leaves
// the WAL authoritative — nothing is lost even though snapshotting
// errored through the whole run.
func TestChaosSnapshotFaultDoesNotLoseRecords(t *testing.T) {
	t.Cleanup(faultinject.DisarmAll)
	dir := t.TempDir()
	s, _, err := Open(dir, Options{SnapshotEvery: 2, Registry: obs.NewRegistry(), Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 6; i++ {
		// Re-arm before every append so each automatic compaction
		// attempt fails.
		if err := faultinject.ArmString("jobstore.snapshot=error:full-disk:1"); err != nil {
			t.Fatal(err)
		}
		j := &Job{Kind: KindWorkload, Workload: "example1"}
		if err := s.Submit(j); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		ids = append(ids, j.ID)
	}
	faultinject.DisarmAll()
	// Crash without Close.
	s2, recovered := testOpen(t, dir)
	defer s2.Close()
	if len(recovered) != len(ids) {
		t.Fatalf("recovered %d jobs, want %d", len(recovered), len(ids))
	}
	for _, id := range ids {
		if j := s2.Get(id); j == nil || j.State != StateQueued {
			t.Fatalf("job %s after failed compactions = %+v", id, j)
		}
	}
}
