package jobstore

import (
	"errors"
	"fmt"
	"time"
)

// Leases are how remote, stateless workers claim work from the
// coordinator's store.  A lease is (job id, attempt, fencing token,
// TTL): the worker heartbeats to extend the TTL while its attempt
// runs and posts the terminal result under the token.  The store's
// reclaimer re-queues any job whose lease expires — the worker was
// killed, partitioned away, or wedged — and the fencing token makes a
// zombie's late heartbeat or result a structured rejection instead of
// a double-completion:
//
//   - Tokens are issued from a store-wide monotonic counter that is
//     WAL-persisted (and snapshot-carried), so a token granted after a
//     coordinator restart is always greater than any granted before.
//   - Only the exact token of the job's *current* lease may renew or
//     complete it.  A reclaimed, restarted, or re-leased job has no
//     lease (or a newer one), so the stale token fails with ErrFenced.
//   - The WAL's terminal-never-regresses replay invariant holds across
//     reclaim races: a completion that reached the WAL wins; a zombie
//     arriving later is fenced at the store boundary before any state
//     transition is attempted.
//
// Leases are deliberately volatile: a coordinator restart invalidates
// every outstanding lease (replay re-queues the leased jobs), which is
// exactly the safe direction — the attempts re-run, and the pipeline's
// determinism makes the re-run's report bit-identical.

// Lease is one granted claim on a job.  The Token is the fencing
// token: every state-changing call on the lease must present it.
type Lease struct {
	JobID     string        `json:"job_id"`
	Attempt   int           `json:"attempt"`
	Token     uint64        `json:"token"`
	Worker    string        `json:"worker,omitempty"`
	ExpiresAt time.Time     `json:"expires_at"`
	TTL       time.Duration `json:"ttl_ns"`
}

// LeaseView is the volatile lease info filled into Get/List clones of
// a remotely running job — everything but the fencing token, which
// only the granted worker may hold.
type LeaseView struct {
	Worker    string    `json:"worker,omitempty"`
	Attempt   int       `json:"attempt"`
	ExpiresAt time.Time `json:"expires_at"`
}

// Lease TTL clamps: a hostile or buggy worker cannot request a lease
// so short it flaps nor so long it parks a job for an hour.
const (
	MinLeaseTTL = 200 * time.Millisecond
	MaxLeaseTTL = 10 * time.Minute
)

// ClampLeaseTTL folds a requested TTL into [MinLeaseTTL, MaxLeaseTTL],
// substituting def (itself clamped) when the request is zero.
func ClampLeaseTTL(req, def time.Duration) time.Duration {
	if req == 0 {
		req = def
	}
	if req < MinLeaseTTL {
		req = MinLeaseTTL
	}
	if req > MaxLeaseTTL {
		req = MaxLeaseTTL
	}
	return req
}

// Lease error taxonomy, classified so the serving layer can map them
// to HTTP: no ready job → 204, fenced (stale token, reclaimed lease,
// already-terminal job) → 409, job deleted/unknown → 410.
var (
	ErrNoReadyJob = errors.New("no ready job")
	ErrFenced     = errors.New("fenced")
	ErrLeaseGone  = errors.New("job gone")
)

// AcquireLease claims the oldest ready queued job for worker: the job
// transitions to running (attempt counter incremented and persisted,
// exactly like a local Start) and a lease with a fresh fencing token
// is granted for ttl.  Jobs whose persisted attempt counter already
// reached maxAttempts are quarantined during the scan instead of being
// handed out — the remote twin of the pool's crash-loop guard.  When
// no queued job is ready it returns ErrNoReadyJob.
func (s *Store) AcquireLease(worker string, ttl time.Duration, maxAttempts int) (*Lease, *Job, error) {
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, id := range s.order {
		j := s.jobs[id]
		if j.State != StateQueued || (!j.NextRunAt.IsZero() && j.NextRunAt.After(now)) {
			continue
		}
		if maxAttempts > 0 && j.Attempts >= maxAttempts {
			s.quarantineLocked(j, &JobError{
				Message:  fmt.Sprintf("quarantined after %d crash-interrupted attempts", j.Attempts),
				Terminal: true,
				Attempt:  j.Attempts,
			})
			continue
		}
		return s.grantLocked(j, worker, ttl, now)
	}
	return nil, nil, ErrNoReadyJob
}

// grantLocked issues the lease: queued → running with a fresh fencing
// token, WAL-persisted like Start (best-effort: losing the record
// replays the job as queued, which only re-runs it).
func (s *Store) grantLocked(j *Job, worker string, ttl time.Duration, now time.Time) (*Lease, *Job, error) {
	s.fence++
	j.State = StateRunning
	j.Attempts++
	j.StartedAt = now
	j.NextRunAt = time.Time{}
	lease := &Lease{
		JobID: j.ID, Attempt: j.Attempts, Token: s.fence,
		Worker: worker, ExpiresAt: now.Add(ttl), TTL: ttl,
	}
	s.leases[j.ID] = lease
	evs := traceAppend(j, TraceEvent{
		At: now, Event: TraceLease, Attempt: j.Attempts,
		Detail: fmt.Sprintf("worker %s token %d ttl %s", worker, lease.Token, ttl),
	})
	if werr := s.appendLocked(record{
		T: "state", ID: j.ID, State: StateRunning, Attempts: j.Attempts, At: now,
		Fence: lease.Token, Worker: worker, TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: lease record not persisted (%v); continuing", j.ID, werr)
	}
	s.reg.Add("jobs.leases.granted", 1)
	s.publishGauges()
	return cloneLease(lease), j.Clone(), nil
}

// RenewLease extends the lease's TTL (a worker heartbeat).  Fencing:
// only the current lease's exact token renews; a reclaimed or
// re-granted lease fails with ErrFenced, a deleted job with
// ErrLeaseGone — the zombie worker learns it no longer owns the job.
func (s *Store) RenewLease(jobID string, token uint64, ttl time.Duration) (*Lease, error) {
	now := time.Now().UTC()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.jobs[jobID]; !ok {
		return nil, fmt.Errorf("jobstore: %w: %s", ErrLeaseGone, jobID)
	}
	ls := s.leases[jobID]
	if ls == nil || ls.Token != token {
		s.reg.Add("jobs.leases.fenced", 1)
		return nil, fmt.Errorf("jobstore: %w: job %s has no lease with token %d", ErrFenced, jobID, token)
	}
	ls.ExpiresAt = now.Add(ttl)
	ls.TTL = ttl
	s.reg.Add("jobs.leases.renewed", 1)
	return cloneLease(ls), nil
}

// CompleteLease marks a leased job succeeded under its fencing token,
// first appending the trace events the worker shipped with the result
// (pipeline stages observed on the remote node).  A stale token —
// the lease was reclaimed, the coordinator restarted, or another
// worker re-ran the job to completion — fails with ErrFenced and the
// job is untouched: terminal-never-regresses holds across nodes.
func (s *Store) CompleteLease(jobID string, token uint64, res *Result, evs []TraceEvent) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.fenceCheckLocked(jobID, token)
	if err != nil {
		return err
	}
	now := time.Now().UTC()
	traced := traceAppend(j, evs...)
	traced = append(traced, traceAppend(j, TraceEvent{
		At: now, Event: TraceComplete, Attempt: j.Attempts, WallNS: res.WallNS,
	})...)
	if err := s.appendLocked(record{
		T: "state", ID: jobID, State: StateSucceeded, At: now, Result: res, TraceEvents: traced,
	}); err != nil {
		// Not durable: keep the lease so the worker can retry the post,
		// and roll the trace back to match disk.
		j.Trace = j.Trace[:len(j.Trace)-len(traced)]
		return err
	}
	delete(s.leases, jobID)
	j.State = StateSucceeded
	j.FinishedAt = now
	j.Result = res
	j.Error = nil
	if j.CacheKey != "" {
		s.cache[j.CacheKey] = j.ID
	}
	delete(s.trackers, jobID)
	s.reg.Add("jobs.completed", 1)
	s.publishGauges()
	return nil
}

// FailLease resolves a failed remote attempt under its fencing token,
// first appending the trace events the worker shipped (stages the
// attempt reached before dying): terminal errors (and exhausted
// attempt budgets) quarantine the job, anything else re-queues it for
// nextRun.  It returns whether the job was re-queued so the caller can
// wake local workers.
func (s *Store) FailLease(jobID string, token uint64, jerr *JobError, evs []TraceEvent, maxAttempts int, nextRun time.Time) (requeued bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, err := s.fenceCheckLocked(jobID, token)
	if err != nil {
		return false, err
	}
	traceAppend(j, evs...)
	delete(s.leases, jobID)
	if jerr != nil && jerr.Terminal {
		s.quarantineLocked(j, jerr)
		return false, nil
	}
	if maxAttempts > 0 && j.Attempts >= maxAttempts {
		q := &JobError{
			Message:  fmt.Sprintf("quarantined after %d attempts: %s", j.Attempts, errMessage(jerr)),
			Terminal: true,
			Attempt:  j.Attempts,
		}
		if jerr != nil {
			q.Budget, q.SpanID = jerr.Budget, jerr.SpanID
		}
		s.quarantineLocked(j, q)
		return false, nil
	}
	s.retryLocked(j, jerr, nextRun)
	return true, nil
}

// fenceCheckLocked validates a lease-holding call: the job must exist
// (else ErrLeaseGone), must not be terminal, and the presented token
// must be the current lease's.  Callers hold s.mu.
func (s *Store) fenceCheckLocked(jobID string, token uint64) (*Job, error) {
	j, ok := s.jobs[jobID]
	if !ok {
		return nil, fmt.Errorf("jobstore: %w: %s", ErrLeaseGone, jobID)
	}
	if j.State.Terminal() {
		s.reg.Add("jobs.leases.fenced", 1)
		return nil, fmt.Errorf("jobstore: %w: job %s already %s", ErrFenced, jobID, j.State)
	}
	ls := s.leases[jobID]
	if ls == nil || ls.Token != token {
		s.reg.Add("jobs.leases.fenced", 1)
		return nil, fmt.Errorf("jobstore: %w: job %s has no lease with token %d", ErrFenced, jobID, token)
	}
	return j, nil
}

// Reclaimed describes one lease the reclaimer took back.
type Reclaimed struct {
	JobID       string
	Worker      string
	Attempt     int
	Token       uint64
	Quarantined bool
	TraceID     string
}

// ReclaimExpired re-queues every job whose lease TTL has passed — the
// worker was killed, partitioned, or wedged.  Jobs whose attempt
// budget is exhausted quarantine instead.  The zombie worker's token
// dies here: any later heartbeat or result post under it is fenced.
func (s *Store) ReclaimExpired(now time.Time, maxAttempts int) []Reclaimed {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Reclaimed
	for id, ls := range s.leases {
		if ls.ExpiresAt.After(now) {
			continue
		}
		j, ok := s.jobs[id]
		delete(s.leases, id)
		if !ok || j.State != StateRunning {
			continue
		}
		rc := Reclaimed{JobID: id, Worker: ls.Worker, Attempt: ls.Attempt, Token: ls.Token, TraceID: j.TraceID}
		jerr := &JobError{
			Message: fmt.Sprintf("lease expired: worker %s silent past %s (attempt %d)",
				ls.Worker, ls.TTL, ls.Attempt),
			Attempt: ls.Attempt,
		}
		traceAppend(j, TraceEvent{
			At: now, Event: TraceReclaim, Attempt: ls.Attempt,
			Detail: fmt.Sprintf("worker %s token %d", ls.Worker, ls.Token),
		})
		if maxAttempts > 0 && j.Attempts >= maxAttempts {
			jerr.Terminal = true
			jerr.Message = fmt.Sprintf("quarantined after %d attempts; last: %s", j.Attempts, jerr.Message)
			s.quarantineLocked(j, jerr)
			rc.Quarantined = true
		} else {
			s.retryLocked(j, jerr, time.Time{})
		}
		s.reg.Add("jobs.leases.reclaimed", 1)
		out = append(out, rc)
	}
	if len(out) > 0 {
		s.publishGauges()
	}
	return out
}

// quarantineLocked is Quarantine's body for callers already holding
// s.mu (lease resolution, the acquire scan's crash-loop guard).
func (s *Store) quarantineLocked(j *Job, jerr *JobError) {
	now := time.Now().UTC()
	j.State = StateFailed
	j.Error = jerr
	j.FinishedAt = now
	evs := traceAppend(j, TraceEvent{
		At: now, Event: TraceQuarantine, Attempt: j.Attempts, Detail: errMessage(jerr),
	})
	if werr := s.appendLocked(record{
		T: "state", ID: j.ID, State: StateFailed, Attempts: j.Attempts, At: now, Error: jerr,
		TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: quarantine record not persisted (%v); continuing", j.ID, werr)
	}
	delete(s.trackers, j.ID)
	s.reg.Add("jobs.quarantined", 1)
	s.publishGauges()
}

// retryLocked is Retry's body for callers already holding s.mu.
func (s *Store) retryLocked(j *Job, jerr *JobError, nextRun time.Time) {
	j.State = StateQueued
	j.Error = jerr
	j.NextRunAt = nextRun
	evs := traceAppend(j, TraceEvent{
		At: time.Now().UTC(), Event: TraceRetry, Attempt: j.Attempts, Detail: errMessage(jerr),
	})
	if werr := s.appendLocked(record{
		T: "state", ID: j.ID, State: StateQueued, Attempts: j.Attempts,
		Error: jerr, NextRunAt: nextRun, TraceEvents: evs,
	}); werr != nil {
		s.logf("jobstore: job %s: retry record not persisted (%v); continuing", j.ID, werr)
	}
	s.reg.Add("jobs.retries", 1)
	s.publishGauges()
}

// LeaseOf returns the job's current lease (token included — callers
// are trusted in-process code; the HTTP layer serves LeaseView), or
// nil.
func (s *Store) LeaseOf(jobID string) *Lease {
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.leases[jobID]
	if ls == nil {
		return nil
	}
	return cloneLease(ls)
}

// Leases counts outstanding leases.
func (s *Store) Leases() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.leases)
}

// FenceToken returns the store's current fencing counter (tests,
// monotonicity audits).
func (s *Store) FenceToken() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fence
}

func cloneLease(ls *Lease) *Lease {
	c := *ls
	return &c
}

func errMessage(jerr *JobError) string {
	if jerr == nil {
		return ""
	}
	return jerr.Message
}
