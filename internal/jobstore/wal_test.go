package jobstore

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func frame(payload []byte) []byte {
	buf := make([]byte, walHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[walHeaderSize:], payload)
	return buf
}

func writeWAL(t *testing.T, path string, raw []byte) {
	t.Helper()
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func replayAll(t *testing.T, path string) (payloads [][]byte, good int64, skipped int, warnings []string) {
	t.Helper()
	good, skipped, err := replayWAL(path, func(p []byte) {
		payloads = append(payloads, copyOf(p))
	}, func(format string, args ...any) {
		warnings = append(warnings, format)
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return payloads, good, skipped, warnings
}

// TestWALAppendReplay: records written through the append handle come
// back intact and in order.
func TestWALAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := openWAL(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]byte{[]byte("one"), []byte("two"), []byte(`{"t":"submit"}`)}
	for _, p := range want {
		if err := w.append(p); err != nil {
			t.Fatal(err)
		}
	}
	w.close()
	got, good, skipped, _ := replayAll(t, path)
	if skipped != 0 {
		t.Fatalf("skipped = %d, want 0", skipped)
	}
	fi, _ := os.Stat(path)
	if good != fi.Size() {
		t.Fatalf("good offset %d != file size %d", good, fi.Size())
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALTornTail: a file ending mid-header or mid-payload replays
// every whole record, warns, and reports the clean boundary so the tail
// can be truncated.
func TestWALTornTail(t *testing.T) {
	whole := frame([]byte("alpha"))
	for _, cut := range []int{1, walHeaderSize - 1, walHeaderSize + 2} {
		torn := frame([]byte("beta-torn"))[:cut]
		path := filepath.Join(t.TempDir(), "wal.log")
		writeWAL(t, path, append(append([]byte{}, whole...), torn...))

		got, good, skipped, warnings := replayAll(t, path)
		if len(got) != 1 || string(got[0]) != "alpha" {
			t.Fatalf("cut %d: replayed %q", cut, got)
		}
		if good != int64(len(whole)) {
			t.Fatalf("cut %d: good offset %d, want %d", cut, good, len(whole))
		}
		if skipped == 0 || len(warnings) == 0 {
			t.Fatalf("cut %d: torn tail not reported (skipped %d, warnings %d)", cut, skipped, len(warnings))
		}
		if err := truncateTail(path, good); err != nil {
			t.Fatal(err)
		}
		if fi, _ := os.Stat(path); fi.Size() != good {
			t.Fatalf("cut %d: truncate left %d bytes, want %d", cut, fi.Size(), good)
		}
	}
}

// TestWALCorruptRecordSkipped: a CRC-corrupt record in the middle is
// skipped with a warning; records after it still replay.
func TestWALCorruptRecordSkipped(t *testing.T) {
	a, b, c := frame([]byte("aaaa")), frame([]byte("bbbb")), frame([]byte("cccc"))
	b[walHeaderSize] ^= 0xff // flip a payload byte under an intact header
	path := filepath.Join(t.TempDir(), "wal.log")
	writeWAL(t, path, append(append(append([]byte{}, a...), b...), c...))

	got, good, skipped, warnings := replayAll(t, path)
	if len(got) != 2 || string(got[0]) != "aaaa" || string(got[1]) != "cccc" {
		t.Fatalf("replayed %q, want aaaa+cccc", got)
	}
	if skipped != 1 || len(warnings) != 1 {
		t.Fatalf("skipped = %d warnings = %d, want 1/1", skipped, len(warnings))
	}
	if good != int64(len(a)+len(b)+len(c)) {
		t.Fatalf("good offset %d, want full file", good)
	}
}

// TestWALOversizedLength: a length field past MaxWALRecord is treated
// as a torn tail, not an allocation request.
func TestWALOversizedLength(t *testing.T) {
	raw := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(raw[0:4], MaxWALRecord+1)
	path := filepath.Join(t.TempDir(), "wal.log")
	writeWAL(t, path, append(frame([]byte("ok")), raw...))
	got, good, skipped, _ := replayAll(t, path)
	if len(got) != 1 || skipped == 0 {
		t.Fatalf("replayed %q skipped %d", got, skipped)
	}
	if good != int64(len(frame([]byte("ok")))) {
		t.Fatalf("good offset %d", good)
	}
}

// TestWALMissingFile: replaying a non-existent WAL is a clean no-op.
func TestWALMissingFile(t *testing.T) {
	got, good, skipped, _ := replayAll(t, filepath.Join(t.TempDir(), "absent.log"))
	if len(got) != 0 || good != 0 || skipped != 0 {
		t.Fatalf("missing file replay = %q %d %d", got, good, skipped)
	}
}

// FuzzWALReplay: arbitrary bytes never panic the replayer, never abort
// it with an error, and the reported good offset is always a prefix the
// replayer accepts cleanly when re-read after truncation.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(frame([]byte("seed")))
	f.Add(append(frame([]byte("a")), frame([]byte("b"))...))
	torn := frame([]byte("torn-tail-seed"))
	f.Add(torn[:len(torn)-3])
	corrupt := frame([]byte("crc-corrupt-seed"))
	corrupt[walHeaderSize] ^= 0x5a
	f.Add(corrupt)
	huge := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(huge[0:4], 0xffffffff)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, raw []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "wal.log")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Skip()
		}
		var n int
		good, _, err := replayWAL(path, func([]byte) { n++ }, func(string, ...any) {})
		if err != nil {
			t.Fatalf("replay errored on arbitrary bytes: %v", err)
		}
		if good < 0 || good > int64(len(raw)) {
			t.Fatalf("good offset %d out of [0,%d]", good, len(raw))
		}
		// After truncating the torn tail the file must replay the same
		// records with the boundary at EOF (mid-file CRC skips remain;
		// only the torn tail goes away).
		if err := truncateTail(path, good); err != nil {
			t.Fatal(err)
		}
		var n2 int
		good2, _, err := replayWAL(path, func([]byte) { n2++ }, func(string, ...any) {})
		if err != nil {
			t.Fatal(err)
		}
		if good2 != good || n2 != n {
			t.Fatalf("truncated file does not replay identically: good %d/%d records %d/%d",
				good2, good, n2, n)
		}
	})
}
