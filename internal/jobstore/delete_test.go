package jobstore

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestDeleteTerminalOnly: queued and running jobs refuse deletion with
// ErrJobActive; terminal jobs delete; unknown ids report ErrUnknownJob.
func TestDeleteTerminalOnly(t *testing.T) {
	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	j := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(j); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(j.ID); !errors.Is(err, ErrJobActive) {
		t.Fatalf("delete queued = %v, want ErrJobActive", err)
	}
	if _, err := s.Start(j.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(j.ID); !errors.Is(err, ErrJobActive) {
		t.Fatalf("delete running = %v, want ErrJobActive", err)
	}
	if err := s.Complete(j.ID, &Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(j.ID); err != nil {
		t.Fatalf("delete succeeded job: %v", err)
	}
	if got := s.Get(j.ID); got != nil {
		t.Fatalf("deleted job still served: %+v", got)
	}
	if got := len(s.List("")); got != 0 {
		t.Fatalf("deleted job still listed: %d entries", got)
	}
	if err := s.Delete(j.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("delete twice = %v, want ErrUnknownJob", err)
	}
	if err := s.Delete("job-999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("delete unknown = %v, want ErrUnknownJob", err)
	}
}

// TestDeleteSurvivesReplay: a WAL-logged deletion holds across both
// recovery paths — a crash before compaction (raw WAL replay of the
// delete record) and a clean close (snapshot without the job).
func TestDeleteSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	s1, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	keep := &Job{Kind: KindWorkload, Workload: "example2"}
	gone := &Job{Kind: KindWorkload, Workload: "example1"}
	for _, j := range []*Job{keep, gone} {
		if err := s1.Submit(j); err != nil {
			t.Fatal(err)
		}
		if _, err := s1.Start(j.ID); err != nil {
			t.Fatal(err)
		}
		if err := s1.Complete(j.ID, &Result{Status: "ok"}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s1.Delete(gone.ID); err != nil {
		t.Fatal(err)
	}
	// No Close: simulate a crash so the delete record is replayed from
	// the WAL rather than folded into a snapshot.
	s2, recovered, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("recovered %d jobs, want 0", len(recovered))
	}
	if s2.Get(gone.ID) != nil {
		t.Fatal("deleted job resurrected by WAL replay")
	}
	if s2.Get(keep.ID) == nil {
		t.Fatal("undeleted job lost")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean close compacted; a third open serves from the snapshot.
	s3, _, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s3.Close()
	if s3.Get(gone.ID) != nil {
		t.Fatal("deleted job resurrected by snapshot")
	}
	if s3.Get(keep.ID) == nil {
		t.Fatal("undeleted job lost after compaction")
	}
}

// TestExpireBefore: the TTL sweep deletes only terminal jobs past the
// cutoff, counts them, and leaves active and recent jobs alone.
func TestExpireBefore(t *testing.T) {
	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	mk := func(finish bool) *Job {
		j := &Job{Kind: KindWorkload, Workload: "example1"}
		if err := s.Submit(j); err != nil {
			t.Fatal(err)
		}
		if finish {
			if _, err := s.Start(j.ID); err != nil {
				t.Fatal(err)
			}
			if err := s.Complete(j.ID, &Result{Status: "ok"}); err != nil {
				t.Fatal(err)
			}
		}
		return j
	}
	old := mk(true)
	fresh := mk(true)
	queued := mk(false)

	// Age the first job past the cutoff by rewriting its finish time
	// (the store owns the clock otherwise).
	s.mu.Lock()
	s.jobs[old.ID].FinishedAt = time.Now().UTC().Add(-time.Hour)
	s.mu.Unlock()

	n, err := s.ExpireBefore(time.Now().UTC().Add(-time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("expired %d jobs, want 1", n)
	}
	if s.Get(old.ID) != nil {
		t.Fatal("aged-out job survived the sweep")
	}
	if s.Get(fresh.ID) == nil || s.Get(queued.ID) == nil {
		t.Fatal("sweep deleted a fresh or active job")
	}
}

// TestPoolTTLSweeper: a pool with a TTL collects aged-out terminal
// jobs without touching queued work.
func TestPoolTTLSweeper(t *testing.T) {
	s, _, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	done := &Job{Kind: KindWorkload, Workload: "example1"}
	if err := s.Submit(done); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Start(done.ID); err != nil {
		t.Fatal(err)
	}
	if err := s.Complete(done.ID, &Result{Status: "ok"}); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.jobs[done.ID].FinishedAt = time.Now().UTC().Add(-time.Hour)
	s.mu.Unlock()

	p := NewPool(s, func(ctx context.Context, job *Job, attempt int) (*Result, error) {
		return &Result{Status: "ok"}, nil
	}, PoolOptions{TTL: time.Minute})
	p.Start(nil)
	defer p.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.Get(done.ID) == nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("TTL sweeper never collected the aged-out job")
}
