package transform

import (
	"fmt"

	"polyprof/internal/isa"
	"polyprof/internal/obs/flight"
	"polyprof/internal/vm"
)

// measure executes a program (no tracing hooks) under the cycle/cache
// model and captures its final memory image for the oracle.
func measure(prog *isa.Program, opts Options) (*Measurement, error) {
	cm := vm.NewCycleModel(opts.Cache)
	m := vm.New(prog)
	m.Cost = cm
	m.Budget = opts.Budget
	if err := m.Run(); err != nil {
		return nil, err
	}
	mem := m.Mem()
	out := &Measurement{
		Cycles:      cm.Cycles(),
		CacheHits:   cm.Cache.Hits(),
		CacheMisses: cm.Cache.Misses(),
		mem:         make([]uint64, len(mem)),
	}
	copy(out.mem, mem)
	return out, nil
}

// verifyOutputs is the output-equality oracle: the transformed program
// must leave a bit-identical final memory image.  A mismatch is a
// correctness bug in the legality check or the rewriter — it freezes a
// flight bundle and fails the run so the transformation is never
// reported as applied-and-verified.
func verifyOutputs(program, nest, kind string, base, got *Measurement) error {
	if len(base.mem) != len(got.mem) {
		return oracleFail(program, nest, kind,
			fmt.Sprintf("memory size changed: %d words vs %d", len(base.mem), len(got.mem)))
	}
	diff := 0
	first := -1
	for i := range base.mem {
		if base.mem[i] != got.mem[i] {
			if first < 0 {
				first = i
			}
			diff++
		}
	}
	if diff == 0 {
		return nil
	}
	return oracleFail(program, nest, kind,
		fmt.Sprintf("%d memory words differ (first at word %d: %#x vs %#x)",
			diff, first, base.mem[first], got.mem[first]))
}

func oracleFail(program, nest, kind, detail string) error {
	err := fmt.Errorf("transform: output-equality oracle failed for %s %s on %s: %s",
		kind, nest, program, detail)
	flight.Trigger("optimize-verify-failed", flight.TriggerInfo{
		Stage:  "transform",
		Detail: err.Error(),
		Extra: map[string]string{
			"program": program,
			"nest":    nest,
			"variant": kind,
		},
	})
	return err
}
