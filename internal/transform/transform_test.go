package transform

import (
	"context"
	"encoding/json"
	"os"
	"testing"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/feedback"
	"polyprof/internal/isa"
	"polyprof/internal/sched"
	"polyprof/internal/workloads"
)

// optimizeWorkload profiles a bundled workload and runs the full
// optimize pipeline over it.
func optimizeWorkload(t *testing.T, name string, opts Options) (*core.Profile, *Report) {
	t.Helper()
	spec := workloads.ByName(name)
	if spec == nil {
		t.Fatalf("unknown workload %q", name)
	}
	p, err := core.Run(spec.Build(), core.DefaultRunOptions())
	if err != nil {
		t.Fatalf("profile %s: %v", name, err)
	}
	rep, err := feedback.AnalyzeChecked(p)
	if err != nil {
		t.Fatalf("analyze %s: %v", name, err)
	}
	opt, err := Optimize(p, rep.Model, rep.AllTransforms(), opts)
	if err != nil {
		dumpReport(t, opt)
		t.Fatalf("optimize %s: %v", name, err)
	}
	return p, opt
}

// dumpReport writes the optimize report where CI picks it up as an
// artifact on failure.
func dumpReport(t *testing.T, opt *Report) {
	t.Helper()
	if opt == nil {
		return
	}
	data, err := json.MarshalIndent(opt, "", "  ")
	if err != nil {
		return
	}
	path := os.Getenv("POLYPROF_OPTJSON_PATH")
	if path == "" {
		path = "OPTIMIZED_report.json"
	}
	if err := os.WriteFile(path, data, 0o644); err == nil {
		t.Logf("optimize report written to %s", path)
	}
}

// equivalenceSubset keeps the default test run fast; the CI leg sets
// POLYPROF_OPT_EXHAUSTIVE=1 to cover every bundled workload.
var equivalenceSubset = map[string]bool{
	"backprop":  true,
	"hotspot":   true,
	"jacobi-2d": true,
	"gemm":      true,
	"trisolv":   true,
	"seidel-2d": true,
	"example1":  true,
	"example2":  true,
}

// TestOptimizeEquivalenceMatrix is the output-equality matrix: every
// bundled workload, every variant the engine decides to apply
// (interchange, tiling, both) must execute to a bit-identical final
// memory image.  Refusals are fine; an applied-but-unverified variant
// is a hard failure.
func TestOptimizeEquivalenceMatrix(t *testing.T) {
	exhaustive := os.Getenv("POLYPROF_OPT_EXHAUSTIVE") == "1"
	applied := 0
	for _, name := range workloads.Names() {
		if !exhaustive && !equivalenceSubset[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			_, opt := optimizeWorkload(t, name, Options{})
			for _, c := range opt.Candidates {
				if c.Refused != nil {
					t.Logf("%s %s: refused: %s", name, c.Nest, c.Refused)
					continue
				}
				for _, v := range c.Variants {
					if v.Refused != nil {
						t.Logf("%s %s %s: refused: %s", name, c.Nest, v.Kind, v.Refused)
						continue
					}
					if !v.Applied || !v.Verified {
						dumpReport(t, opt)
						t.Errorf("%s %s %s: applied=%v verified=%v", name, c.Nest, v.Kind, v.Applied, v.Verified)
						continue
					}
					applied++
					t.Logf("%s %s %s: verified, measured speedup %.3f", name, c.Nest, v.Kind, v.MeasuredSpeedup)
				}
			}
		})
	}
	if applied == 0 {
		t.Errorf("no transformation applied anywhere in the matrix")
	}
}

// TestBackpropMeasuredSpeedup pins the acceptance criterion: the
// backprop case study must report a measured speedup > 1.0 from an
// applied interchange or tiling.
func TestBackpropMeasuredSpeedup(t *testing.T) {
	_, opt := optimizeWorkload(t, "backprop", Options{})
	if opt.BestSpeedup <= 1.0 {
		dumpReport(t, opt)
		t.Fatalf("backprop best measured speedup = %.3f, want > 1.0 (best %q)", opt.BestSpeedup, opt.Best)
	}
	t.Logf("backprop best measured speedup %.3f from %s", opt.BestSpeedup, opt.Best)
}

// TestCandidateDedup: backprop's bpnn_adjust_weights runs twice (two
// dynamic contexts over the same static loops); the engine must merge
// them into one candidate rather than rewriting the nest twice.
func TestCandidateDedup(t *testing.T) {
	_, opt := optimizeWorkload(t, "backprop", Options{})
	merged := 0
	for _, c := range opt.Candidates {
		if c.Contexts >= 2 {
			merged++
			t.Logf("nest %s merged %d contexts", c.Nest, c.Contexts)
		}
	}
	// bpnn_adjust_weights runs twice (hidden->out and in->hidden): its
	// nest must show up once with both contexts, not twice.
	if merged == 0 {
		t.Errorf("no candidate merged multiple dynamic contexts; adjust_weights should")
	}
}

// TestDegradedRefuses: a run whose DDG degraded under budget pressure
// must refuse every transformation conservatively.
func TestDegradedRefuses(t *testing.T) {
	spec := workloads.ByName("jacobi-2d")
	bud := budget.New(context.Background(), budget.Limits{MaxShadowBytes: 1 << 10})
	ro := core.DefaultRunOptions()
	ro.Budget = bud
	p, err := core.Run(spec.Build(), ro)
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	if p.DDG.Degraded == nil {
		t.Skip("shadow budget did not trip; degradation path not reachable here")
	}
	rep, err := feedback.AnalyzeChecked(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	opt, err := Optimize(p, rep.Model, rep.AllTransforms(), Options{})
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if opt.Refused == nil || opt.Refused.Code != RefuseDegradedDDG {
		t.Fatalf("degraded run not refused: %+v", opt.Refused)
	}
	if len(opt.Candidates) != 0 {
		t.Fatalf("degraded run still produced %d candidates", len(opt.Candidates))
	}
}

// illegalInterchangeProgram builds a 2-deep nest carrying the classic
// anti-lexicographic dependence A[i+1][j-1] = f(A[i][j]): distance
// (+1,-1), legal as written, illegal under interchange.
func illegalInterchangeProgram(n int64) *isa.Program {
	pb := isa.NewProgram("illegal-interchange")
	a := pb.Global("A", (n+2)*(n+2))

	f := pb.Func("kernel", 0)
	f.SetFile("illegal.c")
	f.At(10)
	base := f.IConst(a.Base)
	width := f.IConst(n + 2)
	one := f.IConst(1)
	f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
		f.At(11)
		f.Loop("Lj", f.IConst(1), f.IConst(n), 1, func(j isa.Reg) {
			f.At(12)
			// src = A[i][j]
			v := f.LoadIdx(base, f.Add(f.Mul(i, width), j), 0)
			inc := f.Add(v, one)
			// dst = A[i+1][j-1]
			idx1 := f.Add(f.Mul(f.Add(i, one), width), f.Sub(j, one))
			f.StoreIdx(base, idx1, 0, inc)
		})
	})
	f.RetVoid()

	m := pb.Func("main", 0)
	m.SetFile("illegal.c")
	m.At(1)
	mbase := m.IConst(a.Base)
	m.Loop("Linit", m.IConst(0), m.IConst((n+2)*(n+2)), 1, func(i isa.Reg) {
		m.StoreIdx(mbase, i, 0, i)
	})
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// triangularProgram builds a perfectly nested 2-deep loop with a
// triangular inner bound (j < i): canonical everywhere except
// rectangularity, so the structural gate must refuse it.
func triangularProgram(n int64) *isa.Program {
	pb := isa.NewProgram("triangular")
	a := pb.Global("A", n*n)

	f := pb.Func("kernel", 0)
	f.SetFile("tri.c")
	f.At(20)
	base := f.IConst(a.Base)
	width := f.IConst(n)
	one := f.IConst(1)
	f.Loop("Li", f.IConst(0), f.IConst(n), 1, func(i isa.Reg) {
		f.At(21)
		f.Loop("Lj", f.IConst(0), i, 1, func(j isa.Reg) {
			f.At(22)
			idx := f.Add(f.Mul(i, width), j)
			v := f.LoadIdx(base, idx, 0)
			f.StoreIdx(base, idx, 0, f.Add(v, one))
		})
	})
	f.RetVoid()

	m := pb.Func("main", 0)
	m.SetFile("tri.c")
	m.At(1)
	mbase := m.IConst(a.Base)
	m.Loop("Linit", m.IConst(0), m.IConst(n*n), 1, func(i isa.Reg) {
		m.StoreIdx(mbase, i, 0, i)
	})
	m.Call(f.ID())
	m.Halt()
	pb.SetMain(m)
	return pb.MustBuild()
}

// TestLegalityRefusals is the table-driven refusal matrix: programs
// with known-illegal or structurally untransformable nests must be
// refused with the matching structured reason — never silently
// applied.
func TestLegalityRefusals(t *testing.T) {
	cases := []struct {
		name string
		prog func() *isa.Program
		// wantCodes: acceptable refusal codes at candidate or variant
		// level for the nest of interest.
		wantCodes map[string]bool
	}{
		{
			// The scheduler spots the (+1,-1) dependence and proposes a
			// skewed schedule instead — which the rectangular rewriter
			// refuses.  The forced-interchange negative-distance case is
			// TestForcedIllegalInterchange below.
			name:      "skew-suggested-for-negative-distance",
			prog:      func() *isa.Program { return illegalInterchangeProgram(24) },
			wantCodes: map[string]bool{RefuseNeedsSkew: true, RefuseNegativeDistance: true, RefuseStarDep: true},
		},
		{
			name:      "triangular-bounds",
			prog:      func() *isa.Program { return triangularProgram(24) },
			wantCodes: map[string]bool{RefuseNonRectangular: true},
		},
		{
			// trisolv's scalar reload between the loops makes the nest
			// imperfect before rectangularity is even considered.
			name:      "trisolv-imperfect-triangular",
			prog:      func() *isa.Program { return workloads.ByName("trisolv").Build() },
			wantCodes: map[string]bool{RefuseImperfect: true, RefuseNonRectangular: true, RefusePartialBand: true, RefuseNeedsSkew: true, RefuseNegativeDistance: true, RefuseStarDep: true},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			p, err := core.Run(tc.prog(), core.DefaultRunOptions())
			if err != nil {
				t.Fatalf("profile: %v", err)
			}
			rep, err := feedback.AnalyzeChecked(p)
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			opt, err := Optimize(p, rep.Model, rep.AllTransforms(), Options{})
			if err != nil {
				t.Fatalf("optimize: %v", err)
			}
			refusals := map[string]int{}
			for _, c := range opt.Candidates {
				if c.Refused != nil {
					refusals[c.Refused.Code]++
				}
				for _, v := range c.Variants {
					if v.Refused != nil {
						refusals[v.Refused.Code]++
					}
					if v.Applied && !v.Verified {
						t.Errorf("variant %s applied but not verified", v.Kind)
					}
				}
			}
			found := false
			for code := range refusals {
				if tc.wantCodes[code] {
					found = true
				}
			}
			if len(refusals) > 0 && !found {
				t.Errorf("refusal codes %v, want one of %v", refusals, tc.wantCodes)
			}
			t.Logf("refusals: %v", refusals)
		})
	}
}

// TestForcedIllegalInterchange drives the legality gate head-on: the
// (+1,-1) dependence in illegalInterchangeProgram makes interchange
// illegal, and the scheduler would propose skewing instead — so we
// force the interchange through ApplySpec and require the engine to
// refuse it with negative-distance, never apply it.
func TestForcedIllegalInterchange(t *testing.T) {
	p, err := core.Run(illegalInterchangeProgram(24), core.DefaultRunOptions())
	if err != nil {
		t.Fatalf("profile: %v", err)
	}
	rep, err := feedback.AnalyzeChecked(p)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var target *sched.NestTransform
	for _, tr := range rep.AllTransforms() {
		if tr.Nest.Depth() == 2 && tr.BandStart == 0 {
			target = tr
			break
		}
	}
	if target == nil {
		t.Fatalf("no 2-deep nest suggestion found")
	}
	v, err := ApplySpec(p, rep.Model, target, VariantSpec{Interchange: true, Perm: []int{1, 0}}, Options{})
	if err != nil {
		t.Fatalf("ApplySpec: %v", err)
	}
	if v.Applied {
		t.Fatalf("illegal interchange was applied")
	}
	if v.Refused == nil {
		t.Fatalf("illegal interchange neither applied nor refused")
	}
	if v.Refused.Code != RefuseNegativeDistance && v.Refused.Code != RefuseStarDep {
		t.Fatalf("refusal code %s (%s), want %s", v.Refused.Code, v.Refused.Detail, RefuseNegativeDistance)
	}
	t.Logf("forced interchange refused: %s", v.Refused)
}

// TestCheckLegalDirect unit-tests the lexicographic check on synthetic
// distance vectors, including the forced illegal interchange.
func TestCheckLegalDirect(t *testing.T) {
	mk := func(common int, star bool, dists ...[2]int64) *sched.Dep {
		d := &sched.Dep{Common: common, Star: star}
		for _, b := range dists {
			d.Dist = append(d.Dist, sched.DistBound{Min: b[0], Max: b[1], MinOK: true, MaxOK: true})
		}
		return d
	}
	cases := []struct {
		name     string
		deps     []*sched.Dep
		order    []int
		tile     bool
		wantCode string // "" = legal
	}{
		{"identity-positive", []*sched.Dep{mk(2, false, [2]int64{1, 1}, [2]int64{-1, -1})}, []int{0, 1}, false, ""},
		{"interchange-negative", []*sched.Dep{mk(2, false, [2]int64{1, 1}, [2]int64{-1, -1})}, []int{1, 0}, false, RefuseNegativeDistance},
		{"tile-not-permutable", []*sched.Dep{mk(2, false, [2]int64{1, 1}, [2]int64{-1, -1})}, []int{0, 1}, true, RefuseNegativeDistance},
		{"interchange-zero-ok", []*sched.Dep{mk(2, false, [2]int64{0, 0}, [2]int64{1, 3})}, []int{1, 0}, false, ""},
		{"tile-all-nonneg", []*sched.Dep{mk(2, false, [2]int64{0, 2}, [2]int64{1, 3})}, []int{0, 1}, true, ""},
		{"star-refused", []*sched.Dep{mk(2, true)}, []int{1, 0}, false, RefuseStarDep},
		{"machinery-skipped", []*sched.Dep{mk(1, false, [2]int64{0, 0})}, []int{1, 0}, false, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ref := checkLegal(tc.deps, 0, 2, tc.order, tc.tile)
			switch {
			case tc.wantCode == "" && ref != nil:
				t.Fatalf("unexpected refusal %s", ref)
			case tc.wantCode != "" && ref == nil:
				t.Fatalf("expected refusal %s, got legal", tc.wantCode)
			case tc.wantCode != "" && ref.Code != tc.wantCode:
				t.Fatalf("refusal code %s, want %s", ref.Code, tc.wantCode)
			}
		})
	}
}

// TestOracleCatchesMismatch feeds the oracle two differing memory
// images and expects a hard error (and a flight trigger, exercised as
// a no-op while the recorder is disabled).
func TestOracleCatchesMismatch(t *testing.T) {
	base := &Measurement{mem: []uint64{1, 2, 3}}
	same := &Measurement{mem: []uint64{1, 2, 3}}
	diff := &Measurement{mem: []uint64{1, 9, 3}}
	if err := verifyOutputs("p", "n", "interchange", base, same); err != nil {
		t.Fatalf("identical images rejected: %v", err)
	}
	if err := verifyOutputs("p", "n", "interchange", base, diff); err == nil {
		t.Fatalf("differing images accepted")
	}
}

// TestTiledExecutionCounts sanity-checks that a tiled rewrite still
// executes (smoke for the clamped bounds): measured cycle count must
// be positive for every verified variant.
func TestTiledExecutionCounts(t *testing.T) {
	_, opt := optimizeWorkload(t, "backprop", Options{TileSize: 4})
	for _, c := range opt.Candidates {
		for _, v := range c.Variants {
			if v.Verified && (v.Measured == nil || v.Measured.Cycles == 0) {
				t.Errorf("%s %s: verified but no cycle measurement", c.Nest, v.Kind)
			}
		}
	}
	if opt.TileSize != 4 {
		t.Errorf("tile size %d, want 4", opt.TileSize)
	}
}
