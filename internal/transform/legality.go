package transform

import (
	"fmt"

	"polyprof/internal/sched"
)

// checkLegal judges one schedule against the folded-DDG distance
// bounds.  order lists the band dimensions [bandStart, depth) in their
// new outermost-to-innermost order (absolute dimension indices); tile
// additionally requires full permutability of the band.
//
// The argument is the classic lexicographic one.  Each dependence
// instance carries a distance vector d (consumer iteration minus
// producer iteration per common dimension); in the original program
// every instance is lexicographically non-negative by construction.
// A dependence is preserved by the new schedule iff every instance
// stays lexicographically non-negative when its components are read in
// the new dimension order.  The folded DDG gives [min,max] bounds per
// component over the whole dependence domain, so the check is
// conservative: a component with min >= 1 satisfies the dependence for
// every instance (scan stops), min >= 0 keeps the scan going, anything
// weaker (unknown minimum or min < 0) refuses.
//
// Rectangular tiling strip-mines every band dimension, which reorders
// iterations within the band arbitrarily across tile boundaries unless
// the band is fully permutable — so tiling demands min >= 0 on every
// band dimension for every dependence not already satisfied outside
// the band (the first-quadrant condition of Wolf & Lam).
//
// Dependences with an endpoint outside the innermost body — register
// chains through the loop machinery (induction updates, bound
// compares) and the hoisted glue — are identified by a common-depth
// shorter than the nest and skipped: the rewriter regenerates that
// machinery from scratch, and the structural gates already proved the
// glue invariant.  Memory operations live only in the innermost body
// (recognition refuses anything else), so every skipped dependence is
// a register dependence on regenerated code.
func checkLegal(deps []*sched.Dep, bandStart, depth int, order []int, tile bool) *Refusal {
	for _, dep := range deps {
		if dep.Common < depth && !dep.Star {
			continue // loop machinery / glue register chain, regenerated
		}
		if dep.SatisfiedBefore(bandStart) {
			continue // carried by an outer dimension the rewrite keeps
		}
		if dep.Star {
			return refuse(RefuseStarDep,
				"over-approximated dependence %s: every direction must be assumed", depName(dep))
		}
		if tile {
			for _, k := range order {
				if k >= len(dep.Dist) {
					return refuse(RefuseStarDep,
						"dependence %s has no distance information for dimension %d", depName(dep), k)
				}
				b := dep.Dist[k]
				if !b.MinOK || b.Min < 0 {
					return refuse(RefuseNegativeDistance,
						"dependence %s: dimension %d distance not provably >= 0, band is not fully permutable",
						depName(dep), k)
				}
			}
			continue
		}
		for _, k := range order {
			if k >= len(dep.Dist) {
				return refuse(RefuseStarDep,
					"dependence %s has no distance information for dimension %d", depName(dep), k)
			}
			b := dep.Dist[k]
			if !b.MinOK || b.Min < 0 {
				return refuse(RefuseNegativeDistance,
					"dependence %s: dimension %d distance could be negative before the dependence is satisfied",
					depName(dep), k)
			}
			if b.Min >= 1 {
				break // satisfied at this dimension for every instance
			}
			// min may be 0 here: keep scanning inner dimensions.  A
			// dependence satisfied on no band dimension has distance
			// zero everywhere: loop-independent, preserved because
			// body instruction order is untouched.
		}
	}
	return nil
}

// depName renders a dependence for refusal messages.
func depName(d *sched.Dep) string {
	if d.D != nil {
		return d.D.String()
	}
	return fmt.Sprintf("dep (distance %v)", d.Dist)
}
