package transform

import (
	"fmt"

	"polyprof/internal/isa"
)

// genLevel is one loop of the rewritten nest, outermost to innermost.
type genLevel struct {
	iv, lo, hi isa.Reg
	stepReg    isa.Reg // fresh register the latch loads the step into
	step       int64
	// setup is emitted in the enclosing block just before the loop
	// entry (tile-bound clamping for point loops).
	setup []isa.Instr
	loc   isa.SrcLoc
}

// rewrite clones the program and replaces the recognized nest with the
// transformed loop structure.  The original nest blocks become
// unreachable (the entry block's terminator is redirected); new blocks
// are appended with dense IDs, so the clone still encodes and
// validates.
func rewrite(orig *isa.Program, info *nestInfo, spec VariantSpec, tileSize int) (*isa.Program, error) {
	prog, err := cloneProgram(orig)
	if err != nil {
		return nil, err
	}
	fn := prog.Func(info.fn.ID)

	levels, err := buildLevels(fn, info, spec, tileSize)
	if err != nil {
		return nil, err
	}

	newBlock := func(name string) *isa.Block {
		b := &isa.Block{
			ID:    isa.BlockID(len(prog.Blocks)),
			Fn:    fn.ID,
			Name:  name,
			Index: len(fn.Blocks),
		}
		prog.Blocks = append(prog.Blocks, b)
		fn.Blocks = append(fn.Blocks, b.ID)
		return b
	}

	// Entry: redirect the original preheader's jump into the new nest.
	pre := newBlock(fn.Name + ".opt.pre")
	ph := prog.Block(info.pre)
	t := ph.Terminator()
	if t.Op != isa.Jmp {
		return nil, fmt.Errorf("nest entry block %s does not end in jmp", ph.Name)
	}
	t.Then = pre.ID

	// Hoisted glue runs once, before the whole nest: the structural
	// gates proved every glue value loop-invariant.
	pre.Code = append(pre.Code, info.glue...)

	// Emit the loop chain.  cur is the block receiving the next
	// level's entry (setup; mov iv, lo; jmp header).
	cur := pre
	exit := info.levels[0].exit // where the whole nest continues
	headers := make([]*isa.Block, len(levels))
	for l := range levels {
		lv := &levels[l]
		cur.Code = append(cur.Code, lv.setup...)
		cur.Code = append(cur.Code,
			isa.Instr{Op: isa.Mov, Dst: lv.iv, A: lv.lo, B: isa.NoReg, Index: isa.NoReg, Loc: lv.loc})

		h := newBlock(fmt.Sprintf("%s.opt.h%d", fn.Name, l))
		headers[l] = h
		cur.Code = append(cur.Code,
			isa.Instr{Op: isa.Jmp, Then: h.ID, Else: isa.NoBlock, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Callee: isa.NoFunc, Loc: lv.loc})

		cond := newReg(fn)
		body := newBlock(fmt.Sprintf("%s.opt.b%d", fn.Name, l))
		h.Code = append(h.Code,
			isa.Instr{Op: isa.CmpLT, Dst: cond, A: lv.iv, B: lv.hi, Index: isa.NoReg, Loc: lv.loc},
			isa.Instr{Op: isa.Br, A: cond, Dst: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Then: body.ID, Else: exit, Callee: isa.NoFunc, Loc: lv.loc})

		// The next level's exit block carries this level's latch.
		if l < len(levels)-1 {
			lat := newBlock(fmt.Sprintf("%s.opt.l%d", fn.Name, l))
			appendLatch(lat, lv, h.ID)
			exit = lat.ID
		}
		cur = body
	}

	// Innermost body: the original statements plus this level's latch.
	cur.Code = append(cur.Code, info.body...)
	appendLatch(cur, &levels[len(levels)-1], headers[len(headers)-1].ID)

	if fn.NumRegs > isa.MaxRegsPerFunc {
		return nil, fmt.Errorf("rewrite exceeds register frame limit (%d)", fn.NumRegs)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("rewritten program invalid: %w", err)
	}
	return prog, nil
}

// appendLatch emits the canonical constant-step latch into b.
func appendLatch(b *isa.Block, lv *genLevel, header isa.BlockID) {
	stepReg := lv.stepReg
	b.Code = append(b.Code,
		isa.Instr{Op: isa.ConstI, Dst: stepReg, Imm: lv.step, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Loc: lv.loc},
		isa.Instr{Op: isa.Add, Dst: lv.iv, A: lv.iv, B: stepReg, Index: isa.NoReg, Loc: lv.loc},
		isa.Instr{Op: isa.Jmp, Then: header, Else: isa.NoBlock, Dst: isa.NoReg, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Callee: isa.NoFunc, Loc: lv.loc})
}

func newReg(fn *isa.Func) isa.Reg {
	r := isa.Reg(fn.NumRegs)
	fn.NumRegs++
	return r
}

// buildLevels lays out the rewritten loop chain for the variant:
// interchange reorders the original loops; tiling adds a tile-loop
// layer (stepping by tileSize*step over the original range) above
// point loops clamped to their tile.
func buildLevels(fn *isa.Func, info *nestInfo, spec VariantSpec, tileSize int) ([]genLevel, error) {
	band := len(info.levels)
	// rel[i] is the band-relative original index of the i-th loop in
	// the new order.
	rel := make([]int, 0, band)
	if spec.Perm == nil {
		for i := 0; i < band; i++ {
			rel = append(rel, i)
		}
	} else {
		if len(spec.Perm) != band {
			return nil, fmt.Errorf("permutation names %d dimensions, band has %d", len(spec.Perm), band)
		}
		base := spec.Perm[0]
		for _, k := range spec.Perm {
			if k < base {
				base = k
			}
		}
		seen := make([]bool, band)
		for _, k := range spec.Perm {
			i := k - base
			if i < 0 || i >= band || seen[i] {
				return nil, fmt.Errorf("invalid band permutation %v", spec.Perm)
			}
			seen[i] = true
			rel = append(rel, i)
		}
	}

	var levels []genLevel
	if !spec.Tile {
		for _, i := range rel {
			s := &info.levels[i]
			levels = append(levels, genLevel{
				iv: s.iv, lo: s.lo, hi: s.hi, step: s.step, loc: s.headerLoc,
			})
		}
	} else {
		// Tile loops iterate tile origins over the original ranges.
		tileIVs := make([]isa.Reg, band)
		for _, i := range rel {
			s := &info.levels[i]
			tileIVs[i] = newReg(fn)
			levels = append(levels, genLevel{
				iv: tileIVs[i], lo: s.lo, hi: s.hi, step: int64(tileSize) * s.step, loc: s.headerLoc,
			})
		}
		// Point loops sweep one tile: iv from the tile origin to
		// min(origin + tileSize*step, hi).
		for _, i := range rel {
			s := &info.levels[i]
			span := newReg(fn)
			end := newReg(fn)
			bound := newReg(fn)
			setup := []isa.Instr{
				{Op: isa.ConstI, Dst: span, Imm: int64(tileSize) * s.step, A: isa.NoReg, B: isa.NoReg, Index: isa.NoReg, Loc: s.headerLoc},
				{Op: isa.Add, Dst: end, A: tileIVs[i], B: span, Index: isa.NoReg, Loc: s.headerLoc},
				{Op: isa.MinI, Dst: bound, A: end, B: s.hi, Index: isa.NoReg, Loc: s.headerLoc},
			}
			levels = append(levels, genLevel{
				iv: s.iv, lo: tileIVs[i], hi: bound, step: s.step, setup: setup, loc: s.headerLoc,
			})
		}
	}
	for l := range levels {
		levels[l].stepReg = newReg(fn)
	}
	return levels, nil
}

// cloneProgram deep-copies a program through its canonical JSON
// encoding — a lossless round trip that preserves block IDs, register
// numbers and source locations.
func cloneProgram(p *isa.Program) (*isa.Program, error) {
	data, err := isa.EncodeJSON(p)
	if err != nil {
		return nil, fmt.Errorf("encode for clone: %w", err)
	}
	q, err := isa.DecodeJSON(data)
	if err != nil {
		return nil, fmt.Errorf("decode clone: %w", err)
	}
	return q, nil
}
