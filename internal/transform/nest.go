package transform

import (
	"polyprof/internal/cfg"
	"polyprof/internal/isa"
)

// loopShape is one recognized canonical counted loop:
//
//	preheader: ...; mov iv, lo; jmp header
//	header:    cmplt cond, iv, hi; br cond, body, exit
//	body:      ...
//	latch:     consti stepReg, step; add iv, iv, stepReg; jmp header
//
// which is exactly what the workload builder emits for Loop().  Any
// other shape (LoopDown's descending CmpGE/Sub form, While, manual
// CFGs) is refused rather than guessed at.
type loopShape struct {
	loop   *cfg.Loop
	header isa.BlockID
	body   isa.BlockID // the Br then-target
	exit   isa.BlockID // the Br else-target
	latch  isa.BlockID // block ending with the back-edge jump

	iv, lo, hi, cond isa.Reg
	step             int64

	headerLoc isa.SrcLoc // Loc of the header compare, for codegen
}

// nestInfo is a fully recognized perfectly-nested band: a chain of
// canonical loops where each outer body consists only of hoistable
// glue plus the inner loop, and the innermost body is a single
// straight-line block.
type nestInfo struct {
	fn     *isa.Func
	levels []loopShape // outermost to innermost
	// pre is the block that enters the chain (ends mov iv0, lo0; jmp
	// header0); the rewrite redirects its terminator.
	pre isa.BlockID
	// glue holds the loop-invariant setup instructions found between
	// the loops (address bases, hoisted constants), in original order;
	// the rewrite re-emits them once before the new nest.
	glue []isa.Instr
	// body holds the innermost body instructions without the trailing
	// 3-instruction latch.
	body []isa.Instr
	// bodyLoc is the Loc of the first body instruction.
	bodyLoc isa.SrcLoc
}

// recognize maps a chain of CFG loops (outermost to innermost, the
// suggested band) onto the canonical shape, or refuses with a
// structured reason.
func recognize(prog *isa.Program, loops []*cfg.Loop) (*nestInfo, *Refusal) {
	if len(loops) == 0 {
		return nil, refuse(RefuseNonCanonical, "empty band")
	}
	fn := prog.Func(loops[0].Fn)
	info := &nestInfo{fn: fn}

	// Pass 1: per-loop shape from the header block.
	for k, l := range loops {
		if l.Fn != fn.ID {
			return nil, refuse(RefuseImperfect, "band crosses functions")
		}
		h := prog.Block(l.Header)
		if len(h.Code) != 2 || h.Code[0].Op != isa.CmpLT || h.Code[1].Op != isa.Br ||
			h.Code[1].A != h.Code[0].Dst {
			return nil, refuse(RefuseNonCanonical,
				"loop %s: header is not a canonical cmplt/br counted-loop test", h.Name)
		}
		s := loopShape{
			loop:      l,
			header:    l.Header,
			body:      h.Code[1].Then,
			exit:      h.Code[1].Else,
			iv:        h.Code[0].A,
			hi:        h.Code[0].B,
			cond:      h.Code[0].Dst,
			headerLoc: h.Code[0].Loc,
		}
		// Find the two predecessors: the entry block (ends mov iv, lo;
		// jmp header) and the latch (ends consti/add/jmp).
		var entry, latch isa.BlockID = isa.NoBlock, isa.NoBlock
		for _, bid := range fn.Blocks {
			b := prog.Block(bid)
			t := b.Terminator()
			targets := func(id isa.BlockID) bool {
				switch t.Op {
				case isa.Jmp, isa.Call:
					return t.Then == id
				case isa.Br:
					return t.Then == id || t.Else == id
				}
				return false
			}
			if !targets(l.Header) {
				continue
			}
			if l.Contains(bid) {
				if latch != isa.NoBlock {
					return nil, refuse(RefuseNonCanonical, "loop %s: multiple back edges", h.Name)
				}
				latch = bid
			} else {
				if entry != isa.NoBlock {
					return nil, refuse(RefuseNonCanonical, "loop %s: multiple entry edges", h.Name)
				}
				entry = bid
			}
		}
		if entry == isa.NoBlock || latch == isa.NoBlock {
			return nil, refuse(RefuseNonCanonical, "loop %s: missing entry or back edge", h.Name)
		}
		eb := prog.Block(entry)
		n := len(eb.Code)
		if n < 2 || eb.Code[n-1].Op != isa.Jmp ||
			eb.Code[n-2].Op != isa.Mov || eb.Code[n-2].Dst != s.iv {
			return nil, refuse(RefuseNonCanonical,
				"loop %s: entry block does not initialize the induction register", h.Name)
		}
		s.lo = eb.Code[n-2].A
		lb := prog.Block(latch)
		m := len(lb.Code)
		if m < 3 || lb.Code[m-1].Op != isa.Jmp ||
			lb.Code[m-2].Op != isa.Add || lb.Code[m-2].Dst != s.iv || lb.Code[m-2].A != s.iv ||
			lb.Code[m-3].Op != isa.ConstI || lb.Code[m-3].Dst != lb.Code[m-2].B {
			return nil, refuse(RefuseNonCanonical,
				"loop %s: latch is not a constant-step increment (descending or irregular loop)", h.Name)
		}
		s.step = lb.Code[m-3].Imm
		if s.step <= 0 {
			return nil, refuse(RefuseNonCanonical, "loop %s: non-positive step %d", h.Name, s.step)
		}
		s.latch = latch
		if k == 0 {
			info.pre = entry
		} else if entry != info.levels[k-1].body {
			// The inner loop must be entered from the enclosing body
			// block, otherwise statements execute around it.
			return nil, refuse(RefuseImperfect,
				"loop %s is not entered directly from the enclosing loop body", h.Name)
		}
		info.levels = append(info.levels, s)
	}

	// Pass 2: perfect-nesting structure between levels.
	depth := len(info.levels)
	for k := 0; k < depth-1; k++ {
		outer, inner := &info.levels[k], &info.levels[k+1]
		// The outer body block holds only glue + the inner-loop entry
		// (mov iv, lo; jmp inner-header); pass 1 already verified the
		// inner loop is entered from exactly this block, so everything
		// before the trailing two instructions is glue.
		code := prog.Block(outer.body).Code
		for _, in := range code[:len(code)-2] {
			if in.Op.IsMem() || in.Op == isa.Call || in.Op.IsTerminator() {
				return nil, refuse(RefuseImperfect,
					"statement between loop %s and its inner loop", prog.Block(outer.header).Name)
			}
			info.glue = append(info.glue, in)
		}
		// The outer latch must be exactly the inner loop's exit block
		// and contain nothing but the increment: code after the inner
		// loop would make the nest imperfect.
		if outer.latch != inner.exit {
			return nil, refuse(RefuseImperfect,
				"loop %s: back edge does not follow directly from the inner loop's exit", prog.Block(outer.header).Name)
		}
		if len(prog.Block(outer.latch).Code) != 3 {
			return nil, refuse(RefuseImperfect,
				"statements after the inner loop inside loop %s", prog.Block(outer.header).Name)
		}
	}

	// Innermost body: one straight-line block that is its own latch.
	last := &info.levels[depth-1]
	if last.body != last.latch {
		return nil, refuse(RefuseImperfect,
			"innermost loop body spans multiple blocks (control flow in the body)")
	}
	bcode := prog.Block(last.body).Code
	info.body = append(info.body, bcode[:len(bcode)-3]...)
	if len(info.body) > 0 {
		info.bodyLoc = info.body[0].Loc
	}
	for _, in := range info.body {
		if in.Op == isa.Call {
			return nil, refuse(RefuseImperfect, "call in the innermost loop body")
		}
	}

	// Pass 3: the chain must account for every block of the outermost
	// band loop — any extra block means unrecognized control flow.
	chain := map[isa.BlockID]bool{}
	for k := range info.levels {
		s := &info.levels[k]
		chain[s.header] = true
		chain[s.body] = true
		chain[s.latch] = true
	}
	for bid := range loops[0].Blocks {
		if !chain[bid] {
			return nil, refuse(RefuseImperfect,
				"unrecognized block %s inside the nest", prog.Block(bid).Name)
		}
	}

	if ref := info.checkInvariance(prog, loops[0]); ref != nil {
		return nil, ref
	}
	return info, nil
}

// checkInvariance enforces rectangularity: loop bounds, steps and glue
// inputs must not be written anywhere inside the nest (outside the
// recognized induction updates and the glue itself).  This is what
// refuses triangular nests — an inner bound that reads the outer
// induction register sees it written by the outer latch.
func (info *nestInfo) checkInvariance(prog *isa.Program, outer *cfg.Loop) *Refusal {
	// writes counts register writes by nest instructions, excluding
	// the recognized machinery (header compares, latch increments,
	// entry movs) but including glue and body.
	writes := map[isa.Reg]int{}
	glueWrites := map[isa.Reg]int{}
	for _, in := range info.glue {
		if in.Op.WritesDst() {
			writes[in.Dst]++
			glueWrites[in.Dst]++
		}
	}
	for _, in := range info.body {
		if in.Op.WritesDst() {
			writes[in.Dst]++
		}
	}
	ivs := map[isa.Reg]bool{}
	for k := range info.levels {
		ivs[info.levels[k].iv] = true
	}

	// Bounds must be nest-invariant: either defined outside the nest or
	// produced exclusively by the (hoistable, separately validated)
	// glue.  A bound that is an induction register — or written by the
	// body — is a triangular/irregular nest.
	for k := range info.levels {
		s := &info.levels[k]
		for _, bound := range [2]isa.Reg{s.lo, s.hi} {
			if ivs[bound] {
				return refuse(RefuseNonRectangular,
					"bounds of loop %s read an induction register", prog.Block(s.header).Name)
			}
			if writes[bound] > 0 && glueWrites[bound] != writes[bound] {
				return refuse(RefuseNonRectangular,
					"bound of loop %s varies inside the nest", prog.Block(s.header).Name)
			}
		}
	}

	// Glue must be hoistable: each glue instruction's inputs are
	// either nest-invariant or produced by earlier glue, and its
	// output must not be written by anything else in the nest.
	produced := map[isa.Reg]bool{}
	var regbuf []isa.Reg
	for i := range info.glue {
		in := &info.glue[i]
		for _, r := range in.Uses(regbuf) {
			if ivs[r] {
				return refuse(RefuseNonRectangular,
					"setup between loops reads induction register r%d", r)
			}
			if writes[r] > 0 && !produced[r] {
				return refuse(RefuseNonRectangular,
					"setup between loops reads register r%d written inside the nest", r)
			}
		}
		if in.Op.WritesDst() {
			if writes[in.Dst] != glueWrites[in.Dst] {
				return refuse(RefuseNonRectangular,
					"setup register r%d is also written by the loop body", in.Dst)
			}
			produced[in.Dst] = true
		}
	}

	// The body must not write induction, bound or condition registers.
	for _, in := range info.body {
		if !in.Op.WritesDst() {
			continue
		}
		if ivs[in.Dst] {
			return refuse(RefuseNonCanonical,
				"loop body writes induction register r%d", in.Dst)
		}
		if glueWrites[in.Dst] > 0 {
			return refuse(RefuseNonRectangular,
				"loop body writes setup register r%d", in.Dst)
		}
		for k := range info.levels {
			s := &info.levels[k]
			if in.Dst == s.hi || in.Dst == s.lo || in.Dst == s.cond {
				return refuse(RefuseNonRectangular,
					"loop body writes a bound or condition register of loop %s", prog.Block(s.header).Name)
			}
		}
	}
	return nil
}
