// Package transform closes the profile-guided-optimization loop: it
// takes the schedules internal/sched suggests from the folded DDG,
// applies them to the ISA program as IR-to-IR rewrites (loop
// interchange and rectangular tiling on perfectly nested counted-loop
// bands), re-executes the rewritten program under the VM cycle/cache
// model, and attaches the *measured* speedup to the report.
//
// Every candidate goes through three gates before a number is reported:
//
//  1. Structure: the suggested band must map onto a canonical
//     perfectly-nested counted-loop chain in the ISA program
//     (rectangular bounds, single-block body, no calls).  Anything
//     else is refused with a structured reason.
//  2. Legality: every folded dependence under the nest must stay
//     lexicographically non-negative under the new schedule, judged
//     from the folded-DDG distance bounds.  Over-approximated (star)
//     dependences and degraded runs refuse conservatively.
//  3. Verification: the transformed program is executed and its entire
//     final memory image must be bit-identical to the original's — a
//     mismatch freezes a flight bundle and fails the run, it is never
//     reported as a result.
package transform

import (
	"fmt"
	"sort"
	"strings"

	"polyprof/internal/budget"
	"polyprof/internal/cachesim"
	"polyprof/internal/cfg"
	"polyprof/internal/core"
	"polyprof/internal/faultinject"
	"polyprof/internal/obs"
	"polyprof/internal/sched"
)

// Fault points: transform.apply injects at schedule application (after
// legality, before codegen), transform.verify at the output-equality
// oracle.  Error injections fail the optimize stage; panic injections
// are contained by the stage recovery in jobexec and freeze a
// stage-panic flight bundle.
var (
	applyFault  = faultinject.Point("transform.apply")
	verifyFault = faultinject.Point("transform.verify")
)

// Structured refusal codes.  A refusal is a first-class result: the
// engine must never silently apply a schedule it cannot prove legal,
// and must never silently drop one either.
const (
	// RefuseDegradedDDG: the run's DDG was degraded (over-approximated
	// under resource pressure); distances may be missing, so nothing
	// can be proven legal.
	RefuseDegradedDDG = "degraded-ddg"
	// RefuseStarDep: a dependence's map or domain was over-approximated
	// (every direction must be assumed).
	RefuseStarDep = "star-dependence"
	// RefuseNegativeDistance: some dependence distance would become
	// lexicographically negative under the new schedule.
	RefuseNegativeDistance = "negative-distance"
	// RefuseNonCanonical: a loop of the band is not a canonical
	// counted loop (lower-bound init, CmpLT header, constant positive
	// step latch).
	RefuseNonCanonical = "non-canonical-loop"
	// RefuseNonRectangular: a loop bound or hoisted setup value is
	// written inside the nest (e.g. a triangular inner bound).
	RefuseNonRectangular = "non-rectangular-bounds"
	// RefuseImperfect: statements execute between the loops of the
	// band (imperfect nesting), or the body spans several blocks.
	RefuseImperfect = "imperfect-nest"
	// RefusePartialBand: the permutable band does not reach the
	// innermost dimension, so the rewrite would have to move an
	// unanalyzed inner loop.
	RefusePartialBand = "partial-band"
	// RefuseContextConflict: the same static nest was suggested
	// conflicting schedules from different dynamic contexts.
	RefuseContextConflict = "context-conflict"
	// RefuseNeedsSkew: the suggestion relies on skewing, which the
	// rectangular rewriter does not implement.
	RefuseNeedsSkew = "needs-skew"
	// RefuseRecursive: a band dimension is a recursive component, not
	// a CFG loop.
	RefuseRecursive = "recursive-dimension"
)

// Refusal is a structured reason a transformation was not applied.
type Refusal struct {
	Code   string `json:"code"`
	Detail string `json:"detail,omitempty"`
}

func (r *Refusal) String() string {
	if r.Detail == "" {
		return r.Code
	}
	return r.Code + ": " + r.Detail
}

func refuse(code, format string, args ...any) *Refusal {
	return &Refusal{Code: code, Detail: fmt.Sprintf(format, args...)}
}

// DefaultTileSize is the rectangular tile edge when Options.TileSize
// is zero — small enough that the bundled (scaled-down) workloads get
// several tiles per dimension.
const DefaultTileSize = 8

// DefaultMeasureCache returns the cache configuration measurement runs
// use: 16 sets x 2 ways x 4-word lines = 128 words.  The bundled
// workloads are scaled far below real problem sizes, so a real 32KiB
// L1 would hold entire arrays and hide every locality effect the
// transformations exist to exploit; a proportionally scaled cache
// keeps the measured ratios meaningful.
func DefaultMeasureCache() cachesim.Config {
	return cachesim.Config{LineWords: 4, Sets: 16, Ways: 2, HitLatency: 4, MissLatency: 60}
}

// Options configures an Optimize run.
type Options struct {
	// TileSize is the rectangular tile edge (DefaultTileSize when 0).
	TileSize int
	// Cache is the cache model measurement runs execute under
	// (DefaultMeasureCache when zero-valued).
	Cache cachesim.Config
	// Obs receives per-candidate spans and metrics.
	Obs obs.Scope
	// Budget, when set, governs the measurement re-executions exactly
	// like the profiled run: step limits tighten the VM cap and
	// cancellation/deadline aborts the stage.
	Budget *budget.Budget
}

// Report is the result of one Optimize run, embedded into the feedback
// report JSON under "optimization".
type Report struct {
	Program  string          `json:"program"`
	TileSize int             `json:"tile_size"`
	Cache    cachesim.Config `json:"cache"`

	// Refused is set when the whole run was conservatively refused
	// (degraded DDG) before any candidate was considered.
	Refused *Refusal `json:"refused,omitempty"`

	// Baseline is the original program's measurement; all speedups are
	// ratios against it.
	Baseline *Measurement `json:"baseline,omitempty"`

	Candidates []*Candidate `json:"candidates,omitempty"`

	// BestSpeedup is the largest measured speedup over all applied and
	// verified variants (0 when none applied), and Best names it.
	BestSpeedup float64 `json:"best_speedup,omitempty"`
	Best        string  `json:"best,omitempty"`
}

// Candidate is one static loop nest a schedule was suggested for.
// Several dynamic nest contexts (the same loops reached through
// different call paths) collapse into one candidate and must agree on
// the schedule.
type Candidate struct {
	// Nest is the source reference of the nest in original dimension
	// order, e.g. "backprop.c:(320,322)".
	Nest string `json:"nest"`
	// Suggested is the scheduler's description of the suggestion.
	Suggested string `json:"suggested"`
	// Depth and BandStart delimit the band: dimensions
	// [BandStart, Depth) are rewritten.
	Depth     int `json:"depth"`
	BandStart int `json:"band_start"`
	// Contexts counts the dynamic nest contexts that map to this
	// static nest.
	Contexts int `json:"contexts"`
	// Ops is the dynamic operation count under the nest (all contexts).
	Ops uint64 `json:"ops"`
	// Refused is set when the candidate failed a structural gate; no
	// variants are attempted then.
	Refused  *Refusal   `json:"refused,omitempty"`
	Variants []*Variant `json:"variants,omitempty"`

	info *nestInfo    // recognized structure (nil when Refused)
	deps []*sched.Dep // union of deps under all contexts
	sugg *sched.NestTransform
}

// VariantSpec names one concrete transformation of a candidate.
type VariantSpec struct {
	// Interchange applies the permutation Perm to the band.
	Interchange bool `json:"interchange"`
	// Tile strip-mines every band dimension by TileSize and orders the
	// tile loops (by Perm when Interchange is also set).
	Tile bool `json:"tile"`
	// Perm is the band order as absolute dimension indices
	// (identity when nil).
	Perm []int `json:"perm,omitempty"`
}

// Kind renders the spec as a stable label.
func (s VariantSpec) Kind() string {
	switch {
	case s.Interchange && s.Tile:
		return "interchange+tile"
	case s.Tile:
		return "tile"
	default:
		return "interchange"
	}
}

// Measurement is one program execution under the cycle/cache model.
type Measurement struct {
	Cycles      uint64 `json:"cycles"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`

	mem []uint64 // final memory image, for the oracle
}

// Variant is one attempted transformation of a candidate.
type Variant struct {
	Kind string `json:"kind"`
	// Perm is the band order applied (absolute dimension indices).
	Perm     []int `json:"perm,omitempty"`
	TileSize int   `json:"tile_size,omitempty"`
	// Refused is set when the legality check rejected the schedule.
	Refused *Refusal `json:"refused,omitempty"`
	// Applied: the rewrite was performed and executed.  Verified: the
	// output-equality oracle passed (bit-identical final memory).
	Applied  bool `json:"applied"`
	Verified bool `json:"verified"`
	// Measured is the transformed program's execution, and
	// MeasuredSpeedup the baseline/transformed cycle ratio.
	Measured        *Measurement `json:"measured,omitempty"`
	MeasuredSpeedup float64      `json:"measured_speedup,omitempty"`
}

// Optimize applies the suggested schedules to the profiled program and
// measures them.  It returns a report even when every candidate is
// refused; it returns an error only for hard failures (budget abort,
// injected fault, VM error, or an oracle mismatch — which also freezes
// a flight bundle).
func Optimize(p *core.Profile, m *sched.Model, suggestions []*sched.NestTransform, opts Options) (*Report, error) {
	if opts.TileSize <= 0 {
		opts.TileSize = DefaultTileSize
	}
	if opts.Cache == (cachesim.Config{}) {
		opts.Cache = DefaultMeasureCache()
	}
	rep := &Report{
		Program:  p.Prog.Name,
		TileSize: opts.TileSize,
		Cache:    opts.Cache,
	}
	if d := p.DDG.Degraded; d != nil {
		// A degraded DDG may be missing distance information entirely
		// (coarse regions fold to star deps, budgets may have stopped
		// tracking).  Nothing can be proven legal; refuse everything.
		rep.Refused = refuse(RefuseDegradedDDG,
			"DDG degraded (budgets %s): distances are over-approximated, refusing all transformations",
			strings.Join(d.Budgets, ","))
		opts.Obs.Add("transform.refused_degraded", 1)
		return rep, nil
	}

	cands := groupCandidates(p, m, suggestions)
	rep.Candidates = cands
	if len(cands) == 0 {
		return rep, nil
	}

	// One baseline execution serves every candidate: measurement runs
	// are whole-program, so the ratio isolates the rewritten nest only
	// through its share of total cycles — exactly what an end user of
	// the optimized program would observe.
	base, err := measure(p.Prog, opts)
	if err != nil {
		return rep, fmt.Errorf("transform: baseline execution: %w", err)
	}
	rep.Baseline = base

	for _, c := range cands {
		if c.Refused != nil {
			opts.Obs.Add("transform.candidates_refused", 1)
			continue
		}
		if err := optimizeCandidate(p, c, base, rep, opts); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// optimizeCandidate attempts every variant of one candidate under its
// own span.
func optimizeCandidate(p *core.Profile, c *Candidate, base *Measurement, rep *Report, opts Options) error {
	sp := opts.Obs.StartSpan("transform:" + c.Nest)
	defer sp.End()
	sc := opts.Obs.WithSpan(sp)

	for _, spec := range candidateSpecs(c) {
		v, err := applyVariant(p, c, spec, base, Options{
			TileSize: opts.TileSize, Cache: opts.Cache, Obs: sc, Budget: opts.Budget,
		})
		if err != nil {
			sp.Fail(err)
			return err
		}
		c.Variants = append(c.Variants, v)
		switch {
		case v.Refused != nil:
			sc.Add("transform.variants_refused", 1)
		case v.Verified:
			sc.Add("transform.variants_verified", 1)
			if v.MeasuredSpeedup > rep.BestSpeedup {
				rep.BestSpeedup = v.MeasuredSpeedup
				rep.Best = fmt.Sprintf("%s %s", c.Nest, v.Kind)
			}
		}
	}
	return nil
}

// candidateSpecs derives the variants worth measuring from the
// scheduler suggestion: interchange when the suggested order differs
// from identity, tiling when the band is tilable, and the combination
// when both hold.
func candidateSpecs(c *Candidate) []VariantSpec {
	t := c.sugg
	perm := bandPerm(t)
	var specs []VariantSpec
	if t.Interchange {
		specs = append(specs, VariantSpec{Interchange: true, Perm: perm})
	}
	if t.Tilable() {
		specs = append(specs, VariantSpec{Tile: true})
		if t.Interchange {
			specs = append(specs, VariantSpec{Interchange: true, Tile: true, Perm: perm})
		}
	}
	return specs
}

// bandPerm extracts the band-dimension order (absolute indices) from
// the suggestion's full permutation.
func bandPerm(t *sched.NestTransform) []int {
	var perm []int
	for _, k := range t.Perm {
		if k >= t.BandStart {
			perm = append(perm, k)
		}
	}
	return perm
}

// groupCandidates deduplicates suggestions by static nest: the same
// loops reached through different dynamic contexts (e.g. a function
// called twice) produce one candidate whose legality is judged against
// the union of both contexts' dependences.
func groupCandidates(p *core.Profile, m *sched.Model, suggestions []*sched.NestTransform) []*Candidate {
	byKey := map[string]*Candidate{}
	var order []string
	for _, t := range suggestions {
		if !t.Interchange && !t.Tilable() {
			continue // nothing suggested for this nest
		}
		depth := t.Nest.Depth()
		if t.BandLen < 1 || t.BandStart >= depth {
			continue
		}
		key, keyRef := nestKey(p, t)
		c := byKey[key]
		if c == nil {
			c = &Candidate{
				Nest:      keyRef,
				Suggested: t.Describe(),
				Depth:     depth,
				BandStart: t.BandStart,
				sugg:      t,
			}
			byKey[key] = c
			order = append(order, key)
			c.Refused = vetCandidate(p, m, c, t)
		} else {
			// A second dynamic context over the same static loops: the
			// schedules must agree or the candidate is refused — the
			// rewrite is static and applies to every context at once.
			if c.Refused == nil && !sameSchedule(c.sugg, t) {
				c.Refused = refuse(RefuseContextConflict,
					"dynamic contexts disagree on the schedule (%q vs %q)", c.sugg.Describe(), t.Describe())
			}
			if c.Refused == nil {
				c.deps = unionDeps(c.deps, m.DepsUnder(t.Nest.Loops[t.BandStart]))
			}
		}
		c.Contexts++
		if len(t.Nest.Loops) > 0 {
			c.Ops += t.Nest.Loops[0].TotalOps
		}
	}
	cands := make([]*Candidate, 0, len(order))
	for _, k := range order {
		cands = append(cands, byKey[k])
	}
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Ops > cands[j].Ops })
	return cands
}

// vetCandidate runs the structural gates that are independent of the
// concrete variant: band reach, loop canonicality, perfect nesting.
// On success it fills c.info and c.deps.
func vetCandidate(p *core.Profile, m *sched.Model, c *Candidate, t *sched.NestTransform) *Refusal {
	if t.SkewUsed {
		return refuse(RefuseNeedsSkew,
			"suggested band requires skewing, which the rectangular rewriter does not implement")
	}
	return vetStructure(p, m, c, t)
}

// vetStructure is vetCandidate without the skew gate; the forced
// ApplySpec path uses it directly (legality still judges the raw
// distances, so a skew-requiring nest refuses there instead).
func vetStructure(p *core.Profile, m *sched.Model, c *Candidate, t *sched.NestTransform) *Refusal {
	depth := t.Nest.Depth()
	if t.BandStart+t.BandLen != depth {
		return refuse(RefusePartialBand,
			"permutable band [%d,%d) stops above the innermost dimension %d",
			t.BandStart, t.BandStart+t.BandLen, depth-1)
	}
	if t.BandLen < 2 && !t.Tilable() {
		return refuse(RefusePartialBand, "band of depth %d has nothing to reorder", t.BandLen)
	}
	loops := make([]*cfg.Loop, 0, t.BandLen)
	for k := t.BandStart; k < depth; k++ {
		el := t.Nest.Loops[k].Elem
		if el.Loop == nil {
			return refuse(RefuseRecursive, "dimension %d is a recursive component, not a CFG loop", k)
		}
		loops = append(loops, el.Loop)
	}
	info, ref := recognize(p.Prog, loops)
	if ref != nil {
		return ref
	}
	c.info = info
	c.deps = unionDeps(nil, m.DepsUnder(t.Nest.Loops[t.BandStart]))
	return nil
}

// sameSchedule reports whether two suggestions agree where the rewrite
// cares: band placement and dimension order.
func sameSchedule(a, b *sched.NestTransform) bool {
	if a.BandStart != b.BandStart || a.BandLen != b.BandLen || a.Nest.Depth() != b.Nest.Depth() {
		return false
	}
	if len(a.Perm) != len(b.Perm) {
		return false
	}
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			return false
		}
	}
	return true
}

// unionDeps merges dep slices, deduplicating by pointer.
func unionDeps(dst, src []*sched.Dep) []*sched.Dep {
	seen := make(map[*sched.Dep]bool, len(dst))
	for _, d := range dst {
		seen[d] = true
	}
	for _, d := range src {
		if !seen[d] {
			seen[d] = true
			dst = append(dst, d)
		}
	}
	return dst
}

// nestKey identifies the static nest by the header blocks of its band
// loops, and renders the matching source reference.
func nestKey(p *core.Profile, t *sched.NestTransform) (key, ref string) {
	depth := t.Nest.Depth()
	ids := make([]string, 0, depth)
	file := ""
	lines := make([]string, 0, depth)
	for k := 0; k < depth; k++ {
		el := t.Nest.Loops[k].Elem
		if el.Loop == nil {
			ids = append(ids, "R")
			lines = append(lines, "?")
			continue
		}
		ids = append(ids, fmt.Sprintf("b%d", el.Loop.Header))
		blk := p.Prog.Block(el.Loop.Header)
		line := 0
		if len(blk.Code) > 0 {
			line = blk.Code[0].Loc.Line
			if file == "" {
				file = blk.Code[0].Loc.File
			}
		}
		lines = append(lines, fmt.Sprintf("%d", line))
	}
	if file == "" {
		file = "?"
	}
	return strings.Join(ids, ","), fmt.Sprintf("%s:(%s)", file, strings.Join(lines, ","))
}

// applyVariant runs one variant end to end: legality, rewrite,
// execution, oracle.
func applyVariant(p *core.Profile, c *Candidate, spec VariantSpec, base *Measurement, opts Options) (*Variant, error) {
	v := &Variant{Kind: spec.Kind(), Perm: spec.Perm}
	if spec.Tile {
		v.TileSize = opts.TileSize
	}

	sp := opts.Obs.StartSpan("transform-apply:" + v.Kind)
	order := spec.Perm
	if order == nil {
		order = identityOrder(c.BandStart, c.Depth)
	}
	if ref := checkLegal(c.deps, c.BandStart, c.Depth, order, spec.Tile); ref != nil {
		sp.End()
		v.Refused = ref
		return v, nil
	}
	if err := applyFault.Hit(); err != nil {
		sp.Fail(err)
		sp.End()
		return nil, fmt.Errorf("transform: apply %s at %s: %w", v.Kind, c.Nest, err)
	}
	prog, err := rewrite(p.Prog, c.info, spec, opts.TileSize)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("transform: rewrite %s at %s: %w", v.Kind, c.Nest, err)
	}
	v.Applied = true

	vsp := opts.Obs.StartSpan("transform-verify:" + v.Kind)
	defer vsp.End()
	if err := verifyFault.Hit(); err != nil {
		vsp.Fail(err)
		return nil, fmt.Errorf("transform: verify %s at %s: %w", v.Kind, c.Nest, err)
	}
	meas, err := measure(prog, opts)
	if err != nil {
		vsp.Fail(err)
		return nil, fmt.Errorf("transform: execute %s at %s: %w", v.Kind, c.Nest, err)
	}
	v.Measured = meas
	if err := verifyOutputs(p.Prog.Name, c.Nest, v.Kind, base, meas); err != nil {
		vsp.Fail(err)
		opts.Obs.Add("transform.verify_failures", 1)
		return nil, err
	}
	v.Verified = true
	if meas.Cycles > 0 {
		v.MeasuredSpeedup = float64(base.Cycles) / float64(meas.Cycles)
	}
	return v, nil
}

// ApplySpec forces one concrete variant onto a suggested nest,
// bypassing the scheduler's choice of schedule but none of the gates:
// the structural recognition, the legality check against the folded
// DDG, and the output-equality oracle all still run.  Tests use it to
// pin down refusals for schedules the scheduler itself would never
// suggest (e.g. an interchange that violates a loop-carried
// dependence).
func ApplySpec(p *core.Profile, m *sched.Model, t *sched.NestTransform, spec VariantSpec, opts Options) (*Variant, error) {
	if opts.TileSize <= 0 {
		opts.TileSize = DefaultTileSize
	}
	if opts.Cache == (cachesim.Config{}) {
		opts.Cache = DefaultMeasureCache()
	}
	v := &Variant{Kind: spec.Kind(), Perm: spec.Perm}
	if d := p.DDG.Degraded; d != nil {
		v.Refused = refuse(RefuseDegradedDDG,
			"DDG degraded (budgets %s): distances are over-approximated", strings.Join(d.Budgets, ","))
		return v, nil
	}
	c := &Candidate{Depth: t.Nest.Depth(), BandStart: t.BandStart, sugg: t}
	_, c.Nest = nestKey(p, t)
	if ref := vetStructure(p, m, c, t); ref != nil {
		v.Refused = ref
		return v, nil
	}
	base, err := measure(p.Prog, opts)
	if err != nil {
		return nil, fmt.Errorf("transform: baseline execution: %w", err)
	}
	return applyVariant(p, c, spec, base, opts)
}

func identityOrder(bandStart, depth int) []int {
	order := make([]int, 0, depth-bandStart)
	for k := bandStart; k < depth; k++ {
		order = append(order, k)
	}
	return order
}
