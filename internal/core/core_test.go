package core_test

import (
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/trace"
	"polyprof/internal/workloads"

	"polyprof/internal/isa"
)

// TestPipelineInvariants: the two passes and the DDG agree on the
// dynamic operation counts, and profiling is deterministic.
func TestPipelineInvariants(t *testing.T) {
	for _, name := range []string{"example1", "example2", "backprop", "bfs"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog := workloads.ByName(name).Build()
			p1, err := core.Run(prog, core.DefaultRunOptions())
			if err != nil {
				t.Fatal(err)
			}
			// Schedule tree and DDG both account every instruction.
			if p1.Tree.TotalOps() != p1.Stats.Ops {
				t.Errorf("tree ops %d != vm ops %d", p1.Tree.TotalOps(), p1.Stats.Ops)
			}
			if p1.DDG.TotalOps != p1.Stats.Ops {
				t.Errorf("ddg ops %d != vm ops %d", p1.DDG.TotalOps, p1.Stats.Ops)
			}
			if p1.DDG.MemOps != p1.Stats.MemOps {
				t.Errorf("ddg mem ops %d != vm mem ops %d", p1.DDG.MemOps, p1.Stats.MemOps)
			}
			// Statement counts sum to block executions <= ops.
			var stmtInstances uint64
			for _, s := range p1.DDG.Stmts {
				stmtInstances += s.Count
			}
			if stmtInstances == 0 || stmtInstances > p1.Stats.Ops {
				t.Errorf("statement instances %d out of range (ops %d)", stmtInstances, p1.Stats.Ops)
			}
			// Determinism: a second profile folds identically.
			p2, err := core.Run(prog, core.DefaultRunOptions())
			if err != nil {
				t.Fatal(err)
			}
			if len(p1.DDG.Stmts) != len(p2.DDG.Stmts) || len(p1.DDG.Deps) != len(p2.DDG.Deps) {
				t.Errorf("profiles differ across runs: %d/%d stmts, %d/%d deps",
					len(p1.DDG.Stmts), len(p2.DDG.Stmts), len(p1.DDG.Deps), len(p2.DDG.Deps))
			}
		})
	}
}

// TestInstrCountsConsistent: per-instruction counts sum to the
// statement's count times its instruction count.
func TestInstrCountsConsistent(t *testing.T) {
	prog := workloads.Example1()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	perStmt := map[int]uint64{}
	for _, in := range p.DDG.Instrs {
		perStmt[in.Stmt.ID] += in.Count
	}
	for _, s := range p.DDG.Stmts {
		blockLen := uint64(len(prog.Block(s.Block).Code))
		if perStmt[s.ID] != s.Count*blockLen {
			t.Errorf("stmt %d: instr events %d != count %d * block len %d",
				s.ID, perStmt[s.ID], s.Count, blockLen)
		}
	}
}

// TestPass2SinkReceivesEverything: a counting sink sees exactly the
// VM's operations with coords of the right arity.
func TestPass2SinkReceivesEverything(t *testing.T) {
	prog := workloads.Example1()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &countingSink{}
	_, stats, err := core.RunPass2(prog, st, sink, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sink.instrs != stats.Ops {
		t.Errorf("sink saw %d instrs, vm executed %d", sink.instrs, stats.Ops)
	}
	if sink.maxDepth != 2 {
		t.Errorf("max coord depth %d, want 2", sink.maxDepth)
	}
}

type countingSink struct {
	instrs   uint64
	maxDepth int
}

func (c *countingSink) OnControl(trace.ControlEvent) {}

func (c *countingSink) OnInstr(ctx string, coords []int64, ev trace.InstrEvent, in *isa.Instr) {
	c.instrs++
	if len(coords) > c.maxDepth {
		c.maxDepth = len(coords)
	}
}
