// Streaming epoch driver.  A streaming run chunks pass 2 into epochs
// of EpochEvents dynamic instructions.  At every boundary — the VM
// quiescent, batches flushed — the driver:
//
//  1. releases stale shadow records back to the budget (sequential
//     engine with a shadow ceiling: bounded-memory mode, see
//     ddg.Options.Stream),
//  2. folds a deep clone of the live state into a provisional Profile
//     (epoch summaries only ever ADD dependences relative to earlier
//     epochs — folding is monotone and releases only substitute
//     conservative supersets),
//  3. serializes a Checkpoint of the complete pass-2 state, which the
//     job layer persists through the WAL so a killed attempt resumes
//     from the last committed epoch instead of event zero.
//
// Epoch boundaries are deterministic (exact multiples of EpochEvents in
// the VM's op counter), so they land identically on fresh and resumed
// attempts — the invariant behind resume-exactness: the final report of
// a resumed run is byte-identical to an uninterrupted one, with or
// without -parallel-ddg.
//
// Checkpoints are sequential-engine-only and pause while a budget is
// degraded (coarse state is monotone and address-granular; re-charging
// it under a fresh budget would double-degrade).  Provisional reports
// come from either engine: the sequential builder deep-clones, the
// sharded engine flushes its pipeline and snapshots.
package core

import (
	"encoding/json"
	"fmt"

	"polyprof/internal/ddg"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
	"polyprof/internal/obs/flight"
	"polyprof/internal/parddg"
	"polyprof/internal/vm"
)

// Checkpoint is the complete serialized pass-2 state at an epoch
// boundary.  Control structure is NOT stored: pass 1 is deterministic
// and ~10x cheaper than pass 2, so a resumed attempt re-derives the
// forest/component set and re-binds the checkpoint's IDs against it.
type Checkpoint struct {
	// Epoch is the 1-based ordinal of the boundary this checkpoint was
	// taken at; Events is the VM op counter there.
	Epoch  uint64 `json:"epoch"`
	Events uint64 `json:"events"`

	VM         *vm.State                  `json:"vm"`
	Vector     iiv.VectorState            `json:"vector"`
	Tree       iiv.TreeState              `json:"tree"`
	Translator loopevents.TranslatorState `json:"translator"`
	// DDG is nil for iiv-only runs (no dependence sink).
	DDG *ddg.BuilderState `json:"ddg,omitempty"`
}

// DecodeCheckpoint parses a serialized checkpoint.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("core: corrupt checkpoint: %w", err)
	}
	if ck.VM == nil {
		return nil, fmt.Errorf("core: checkpoint has no VM state")
	}
	return &ck, nil
}

// Epoch is what OnEpoch receives at each boundary.
type Epoch struct {
	// N is the 1-based epoch ordinal (resumed runs continue the
	// ordinals of the checkpoint they started from); Events is the VM op
	// counter at the boundary.
	N      uint64
	Events uint64
	// ReleasedBytes is the shadow budget returned at this boundary
	// (bounded-memory streaming only).
	ReleasedBytes uint64
	// Provisional is the folded profile of everything seen so far; its
	// dependence set can only grow in later epochs.
	Provisional *Profile
	// Checkpoint is the serialized Checkpoint, nil when the run is not
	// checkpointable (parallel engine, degraded budget, iiv-only pass
	// follows the same rule as the profile).
	Checkpoint []byte
}

// epochConfig is the driver state threaded from Run into runPass2.
type epochConfig struct {
	events  uint64
	cb      func(*Epoch) error
	resume  *Checkpoint
	builder *ddg.Builder   // sequential engine, nil when parallel
	engine  *parddg.Engine // parallel engine, nil when sequential

	prog *isa.Program
	st   *Structure

	p      *Pass2
	m      *vm.Machine
	epochN uint64
}

// arm installs the epoch hook on the machine and, when a checkpoint is
// armed, restores every pass-2 layer from it.
func (ec *epochConfig) arm(p *Pass2, m *vm.Machine, prog *isa.Program, st *Structure) error {
	ec.p, ec.m, ec.prog, ec.st = p, m, prog, st
	m.EpochEvents = ec.events
	m.OnEpoch = ec.fire
	ck := ec.resume
	if ck == nil {
		return nil
	}
	res := iiv.NewElemResolver(st.Forest, st.Comps)
	v, err := iiv.RestoreVector(ck.Vector, res)
	if err != nil {
		return err
	}
	t, err := iiv.RestoreTree(ck.Tree, res)
	if err != nil {
		return err
	}
	tr, err := loopevents.RestoreTranslator(prog, st.Forest, st.Comps, p.emit, ck.Translator)
	if err != nil {
		return err
	}
	p.Vector, p.Tree, p.tr = v, t, tr
	m.Restore(ck.VM)
	ec.epochN = ck.Epoch
	flight.Log("stream", "resume", fmt.Sprintf("resuming pass 2 from epoch %d (%d events)", ck.Epoch, ck.Events))
	return nil
}

// fire runs at one epoch boundary, on the VM goroutine, with the
// machine quiescent.  Any error (including injected faults in the fold
// or checkpoint paths) aborts the attempt; the job layer retries from
// the last checkpoint that committed.
func (ec *epochConfig) fire(events uint64) error {
	ec.epochN++
	var released uint64
	if ec.builder != nil {
		released = ec.builder.ReleaseEpoch()
	}
	if ec.cb == nil {
		return nil
	}
	ep := &Epoch{N: ec.epochN, Events: events, ReleasedBytes: released}
	prov, err := ec.provisional()
	if err != nil {
		return fmt.Errorf("core: provisional fold at epoch %d: %w", ec.epochN, err)
	}
	ep.Provisional = prov
	if ec.builder != nil && ec.builder.Checkpointable() {
		data, err := ec.checkpoint(events)
		if err != nil {
			return fmt.Errorf("core: checkpoint at epoch %d: %w", ec.epochN, err)
		}
		ep.Checkpoint = data
	}
	return ec.cb(ep)
}

// provisional folds a deep clone of the live state into a Profile.
// The clone carries no budget and a detached disabled registry, so the
// live run's accounting and metrics are untouched.
func (ec *epochConfig) provisional() (*Profile, error) {
	var g *ddg.Graph
	var err error
	switch {
	case ec.builder != nil:
		g, err = ec.builder.Clone().FinishChecked()
	case ec.engine != nil:
		ec.engine.Flush()
		g, err = ec.engine.Snapshot().FinishChecked()
	}
	if err != nil {
		return nil, err
	}
	tree := ec.p.Tree.Clone()
	tree.Finalize()
	return &Profile{
		Prog:      ec.prog,
		Structure: ec.st,
		Tree:      tree,
		DDG:       g,
		Stats:     ec.m.Stats(),
	}, nil
}

// checkpoint serializes the full pass-2 cut at this boundary.
func (ec *epochConfig) checkpoint(events uint64) ([]byte, error) {
	bs, err := ec.builder.State()
	if err != nil {
		return nil, err
	}
	ck := Checkpoint{
		Epoch:      ec.epochN,
		Events:     events,
		VM:         ec.m.Snapshot(),
		Vector:     ec.p.Vector.State(),
		Tree:       ec.p.Tree.State(),
		Translator: ec.p.tr.State(),
		DDG:        bs,
	}
	return json.Marshal(&ck)
}
