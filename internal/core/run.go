package core

import (
	"polyprof/internal/budget"
	"polyprof/internal/ddg"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/obs/sampler"
	"polyprof/internal/parddg"
	"polyprof/internal/progress"
	"polyprof/internal/vm"
)

// Options configures a full profiling run.
type Options struct {
	// DDG tunes dependence tracking (DefaultOptions when zero-valued
	// TrackAnti/TrackOutput/TrackReg are all false — pass
	// ddg.DefaultOptions() for the paper's configuration).
	DDG ddg.Options
	// InitMem optionally preloads the VM memory before each pass.
	InitMem func([]uint64)
	// Obs is the span-context the run records into: stage spans nest
	// under its parent span and all pipeline counters land in its
	// registry.  The zero Scope targets the process-wide default
	// registry, preserving the standalone behavior.
	Obs obs.Scope
	// Budget governs the run's resources (nil for unlimited).  Hard
	// limits (deadline, cancellation, steps, trace events) abort with a
	// *budget.Error; degrading limits (shadow bytes, DDG edges) coarsen
	// the graph — see ddg.Degradation.
	Budget *budget.Budget
	// ParallelDDG selects the sharded dependence engine with that many
	// shard workers (internal/parddg); 0 or negative keeps the
	// sequential builder.  The parallel engine produces a bit-for-bit
	// identical graph on non-degraded runs.
	ParallelDDG int
	// Sampler, when non-nil and enabled, attaches the parallel-engine
	// utilization profiler to the sharded dependence engine (no effect
	// on sequential runs).
	Sampler *sampler.Sampler
	// Progress, when non-nil, receives live stage/event progress: pass 1
	// discovers the program's dynamic op count, pass 2 then reports
	// events against that exact total (the pipeline re-executes the
	// same deterministic program).
	Progress *progress.Tracker
	// EpochEvents chunks pass 2 into epochs of this many dynamic
	// instructions (streaming mode, see stream.go); 0 runs buffered.
	// Boundaries are exact op-counter multiples, so they land
	// identically on fresh and resumed attempts.
	EpochEvents uint64
	// OnEpoch, when non-nil alongside EpochEvents, receives each epoch
	// boundary: a provisional profile and (sequential, non-degraded
	// runs) a serialized checkpoint.  An error aborts the run.
	OnEpoch func(*Epoch) error
	// Resume, when non-nil, restores pass 2 from a decoded checkpoint
	// instead of starting at event zero (pass 1 still re-runs — it is
	// deterministic and provides the structure the checkpoint re-binds
	// against).  Resume forces the sequential engine: checkpoints only
	// exist in its format, and both engines fold byte-identical graphs.
	Resume *Checkpoint
}

// DefaultRunOptions returns the configuration used throughout the
// evaluation: all dependence kinds tracked.
func DefaultRunOptions() Options {
	return Options{DDG: ddg.DefaultOptions()}
}

// Profile is the complete result of running polyprof's first three
// stages on one program: the control structure, the dynamic schedule
// tree, and the folded dynamic dependence graph.
type Profile struct {
	Prog      *isa.Program
	Structure *Structure
	Tree      *iiv.Tree
	DDG       *ddg.Graph
	Stats     vm.Stats

	// Obs is the span-context the profile was recorded under;
	// downstream stages (sched-build, feedback-analyze) nest their
	// spans and metrics under it.
	Obs obs.Scope

	// Budget is the governing budget of the run (nil for unlimited);
	// downstream stages keep polling it.
	Budget *budget.Budget
}

// Run executes the two instrumented passes and folds the DDG.
func Run(prog *isa.Program, opts Options) (*Profile, error) {
	sc, bud, tr := opts.Obs, opts.Budget, opts.Progress
	tr.StartStage("pass1-structure", 0)
	st, err := analyzeStructure(prog, opts.InitMem, sc, bud, tr)
	if err != nil {
		return nil, err
	}
	if err := bud.Check("pass2"); err != nil {
		return nil, err
	}
	ddgOpts := opts.DDG
	ddgOpts.Obs = sc
	ddgOpts.Budget = bud
	var ec *epochConfig
	if opts.EpochEvents > 0 || opts.Resume != nil {
		ec = &epochConfig{events: opts.EpochEvents, cb: opts.OnEpoch, resume: opts.Resume}
	}
	parallel := opts.ParallelDDG > 0 && opts.Resume == nil
	if ec != nil && !parallel && bud.ShadowLimit() > 0 {
		// Bounded-memory mode: fold-and-release stale shadow records at
		// every boundary so the ceiling holds for arbitrarily long traces.
		ddgOpts.Stream = true
	}
	var sink InstrSink
	var finisher ddgFinisher
	if parallel {
		eng := parddg.NewEngine(prog, parddg.Options{Shards: opts.ParallelDDG, DDG: ddgOpts, Sampler: opts.Sampler})
		// Close is idempotent and a no-op after FinishChecked; the defer
		// only matters when pass 2 errors out with worker goroutines
		// still running.
		defer eng.Close()
		sink, finisher = eng, eng
		if ec != nil {
			ec.engine = eng
		}
	} else {
		var builder *ddg.Builder
		if opts.Resume != nil && opts.Resume.DDG != nil {
			var rerr error
			builder, rerr = ddg.RestoreBuilder(prog, ddgOpts, opts.Resume.DDG)
			if rerr != nil {
				return nil, rerr
			}
		} else {
			builder = ddg.NewBuilder(prog, ddgOpts)
		}
		sink, finisher = builder, builder
		if ec != nil {
			ec.builder = builder
		}
	}
	// Pass 2 re-executes the same deterministic program, so pass 1's op
	// count is its exact expected total.
	tr.StartStage("pass2-ddg", st.Stats.Ops)
	p2, stats, err := runPass2(prog, st, sink, opts.InitMem, sc, bud, tr, ec)
	if err != nil {
		return nil, err
	}
	tr.StartStage("fold-finish", 0)
	g, err := finishFold(finisher, sc)
	if err != nil {
		return nil, err
	}
	return &Profile{
		Prog:      prog,
		Structure: st,
		Tree:      p2.Tree,
		DDG:       g,
		Stats:     stats,
		Obs:       sc,
		Budget:    bud,
	}, nil
}

// ddgFinisher is the fold stage of either dependence engine.
type ddgFinisher interface {
	FinishChecked() (*ddg.Graph, error)
}

// finishFold runs the fold stage under its span with panic recovery.
func finishFold(builder ddgFinisher, sc obs.Scope) (g *ddg.Graph, err error) {
	sp := sc.StartSpan("fold-finish")
	defer sp.End()
	defer RecoverStage("fold-finish", sp, &err)
	g, err = builder.FinishChecked()
	if err != nil {
		sp.Fail(err)
		return nil, err
	}
	sp.AddEvents(FoldedStreams(g))
	return g, nil
}

// FoldedStreams counts the folded streams of a finished DDG: one
// iteration-domain stream per statement, one value/access stream per
// instruction that produced one, and one dependence stream per emitted
// edge bundle.  It is the event count of the folding stage.
func FoldedStreams(g *ddg.Graph) uint64 {
	n := uint64(len(g.Stmts)) + uint64(len(g.Deps))
	for _, in := range g.Instrs {
		if in.HasValue() {
			n++
		}
		if in.HasAccess() {
			n++
		}
	}
	return n
}
