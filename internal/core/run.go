package core

import (
	"polyprof/internal/ddg"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/vm"
)

// Options configures a full profiling run.
type Options struct {
	// DDG tunes dependence tracking (DefaultOptions when zero-valued
	// TrackAnti/TrackOutput/TrackReg are all false — pass
	// ddg.DefaultOptions() for the paper's configuration).
	DDG ddg.Options
	// InitMem optionally preloads the VM memory before each pass.
	InitMem func([]uint64)
	// Obs is the span-context the run records into: stage spans nest
	// under its parent span and all pipeline counters land in its
	// registry.  The zero Scope targets the process-wide default
	// registry, preserving the standalone behavior.
	Obs obs.Scope
}

// DefaultRunOptions returns the configuration used throughout the
// evaluation: all dependence kinds tracked.
func DefaultRunOptions() Options {
	return Options{DDG: ddg.DefaultOptions()}
}

// Profile is the complete result of running polyprof's first three
// stages on one program: the control structure, the dynamic schedule
// tree, and the folded dynamic dependence graph.
type Profile struct {
	Prog      *isa.Program
	Structure *Structure
	Tree      *iiv.Tree
	DDG       *ddg.Graph
	Stats     vm.Stats

	// Obs is the span-context the profile was recorded under;
	// downstream stages (sched-build, feedback-analyze) nest their
	// spans and metrics under it.
	Obs obs.Scope
}

// Run executes the two instrumented passes and folds the DDG.
func Run(prog *isa.Program, opts Options) (*Profile, error) {
	sc := opts.Obs
	st, err := AnalyzeStructureScoped(prog, opts.InitMem, sc)
	if err != nil {
		return nil, err
	}
	ddgOpts := opts.DDG
	ddgOpts.Obs = sc
	builder := ddg.NewBuilder(prog, ddgOpts)
	p2, stats, err := RunPass2Scoped(prog, st, builder, opts.InitMem, sc)
	if err != nil {
		return nil, err
	}
	sp := sc.StartSpan("fold-finish")
	g := builder.Finish()
	sp.AddEvents(FoldedStreams(g))
	sp.End()
	return &Profile{
		Prog:      prog,
		Structure: st,
		Tree:      p2.Tree,
		DDG:       g,
		Stats:     stats,
		Obs:       sc,
	}, nil
}

// FoldedStreams counts the folded streams of a finished DDG: one
// iteration-domain stream per statement, one value/access stream per
// instruction that produced one, and one dependence stream per emitted
// edge bundle.  It is the event count of the folding stage.
func FoldedStreams(g *ddg.Graph) uint64 {
	n := uint64(len(g.Stmts)) + uint64(len(g.Deps))
	for _, in := range g.Instrs {
		if in.HasValue() {
			n++
		}
		if in.HasAccess() {
			n++
		}
	}
	return n
}
