// Package core wires the polyprof stages into the end-to-end pipeline
// of the paper's Fig. 1: a first instrumented run recovers the
// interprocedural control structure (dynamic CFGs, call graph,
// loop-nesting forest, recursive-component-set); a second instrumented
// run streams loop events through the dynamic interprocedural iteration
// vector, builds the dynamic schedule tree, and feeds every dynamic
// instruction to the dependence stage.
package core

import (
	"fmt"

	"polyprof/internal/budget"
	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
	"polyprof/internal/obs"
	"polyprof/internal/obs/flight"
	"polyprof/internal/progress"
	"polyprof/internal/trace"
	"polyprof/internal/vm"
)

// RecoverStage converts a panic inside a pipeline stage into an error
// and a failed span, so one hostile program or injected fault degrades
// a single run instead of killing the process.  Use as
//
//	defer sp.End()
//	defer core.RecoverStage(stage, sp, &err)
//
// (deferred after sp.End so it runs first and can fail the span).
// Error-valued panics — injected faults, budget aborts — are wrapped
// with %w so errors.As still classifies them.
func RecoverStage(stage string, sp *obs.Span, errp *error) {
	r := recover()
	if r == nil {
		return
	}
	var err error
	if e, ok := r.(error); ok {
		err = fmt.Errorf("panic in %s: %w", stage, e)
	} else {
		err = fmt.Errorf("panic in %s: %v", stage, r)
	}
	sp.Fail(err)
	*errp = err
	// A stage panic is an anomaly by definition: freeze the flight ring
	// (no-op while the recorder is disabled).  The panic is contained
	// here, so this is the only layer that still knows the stage.
	flight.Trigger("stage-panic", flight.TriggerInfo{Stage: stage, Detail: err.Error()})
}

// Structure is the result of pass 1 ("Instrumentation I"): the
// interprocedural control structure of one execution.
type Structure struct {
	CFG       *cfg.Graph
	Forest    *cfg.Forest
	CallGraph *cg.Graph
	Comps     *cg.ComponentSet
	Stats     vm.Stats
}

// AnalyzeStructure executes the program once under control-event
// instrumentation and derives its control structure, recording into the
// default registry.
func AnalyzeStructure(prog *isa.Program, initMem func([]uint64)) (*Structure, error) {
	return AnalyzeStructureScoped(prog, initMem, obs.Scope{}, nil)
}

// AnalyzeStructureScoped is AnalyzeStructure recording its stage span
// and VM counters into sc's registry, nested under sc's parent span,
// governed by bud (nil for unlimited).
func AnalyzeStructureScoped(prog *isa.Program, initMem func([]uint64), sc obs.Scope, bud *budget.Budget) (*Structure, error) {
	return analyzeStructure(prog, initMem, sc, bud, nil)
}

// analyzeStructure additionally publishes live progress into tr (nil
// for none).
func analyzeStructure(prog *isa.Program, initMem func([]uint64), sc obs.Scope, bud *budget.Budget, tr *progress.Tracker) (st *Structure, err error) {
	sp := sc.StartSpan("pass1-structure")
	defer sp.End()
	defer RecoverStage("pass1-structure", sp, &err)
	rec := cfg.NewRecorder(prog)
	m := vm.New(prog, rec)
	m.InitMem = initMem
	m.Obs = sc
	m.Budget = bud
	m.Progress = tr
	if err := m.Run(); err != nil {
		sp.Fail(err)
		return nil, err
	}
	sp.AddEvents(m.Stats().Ops)
	callGraph := cg.FromCallEdges(prog.Main, rec.CallEdges)
	return &Structure{
		CFG:       rec.G,
		Forest:    cfg.BuildForest(rec.G),
		CallGraph: callGraph,
		Comps:     cg.BuildComponents(callGraph),
		Stats:     m.Stats(),
	}, nil
}

// InstrSink receives, for every executed instruction, the statement
// context and iteration-vector coordinates assigned by the IIV stage.
// The dependence-graph builder implements it; tests use lightweight
// sinks.
type InstrSink interface {
	// OnControl sees raw control events (before loop-event translation),
	// so sinks can mirror the call stack for register dependence
	// tracking.
	OnControl(ev trace.ControlEvent)
	// OnInstr is called per dynamic instruction with the current context
	// key and coordinates.  coords is only valid during the call.
	OnInstr(ctxKey string, coords []int64, ev trace.InstrEvent, in *isa.Instr)
}

// BatchSink is an optional InstrSink extension: a sink that also
// implements OnInstrBatch receives instruction events in per-context
// batches (one context key and coordinate vector shared by the whole
// batch, since the iteration vector only changes on control events).
// The sharded dependence engine implements it; Pass2 automatically
// drives such a sink through the VM's batched emission path.
type BatchSink interface {
	InstrSink
	// OnInstrBatch delivers a run of instruction events sharing one
	// context.  coords is only valid during the call; evs[i] pairs with
	// ins[i].
	OnInstrBatch(ctxKey string, coords []int64, evs []trace.InstrEvent, ins []*isa.Instr)
}

// Pass2 is the second instrumentation pass: loop events, IIVs, schedule
// tree, and fan-out to an InstrSink.
type Pass2 struct {
	Vector *iiv.Vector
	Tree   *iiv.Tree

	tr     *loopevents.Translator
	sink   InstrSink
	coords []int64

	// Events optionally records every loop event (used by the figure
	// reproduction tests; nil in production runs).
	Events *[]loopevents.Event
}

// NewPass2 builds the pass-2 hook for a program whose structure was
// recovered by AnalyzeStructure.
func NewPass2(prog *isa.Program, st *Structure, sink InstrSink) *Pass2 {
	p := &Pass2{Vector: iiv.NewVector(), Tree: iiv.NewTree(), sink: sink}
	p.tr = loopevents.NewTranslator(prog, st.Forest, st.Comps, p.emit)
	return p
}

// emit is the loop-event consumer: it advances the iteration vector and
// the schedule tree.  A method (not a closure) so checkpoint resume can
// hand the same consumer to a restored translator.
func (p *Pass2) emit(e loopevents.Event) {
	if p.Events != nil {
		*p.Events = append(*p.Events, e)
	}
	p.Vector.Apply(e)
	switch e.Kind {
	case loopevents.EnterLoop, loopevents.IterateLoop,
		loopevents.EnterRec, loopevents.IterCallRec, loopevents.IterRetRec:
		p.Tree.NoteIteration(p.Vector)
	}
}

// Control implements trace.Hook.
func (p *Pass2) Control(ev trace.ControlEvent) {
	if p.sink != nil {
		p.sink.OnControl(ev)
	}
	p.tr.Control(ev)
	p.Tree.Touch(p.Vector)
}

// Instr implements trace.Hook.
func (p *Pass2) Instr(ev trace.InstrEvent, in *isa.Instr) {
	p.Tree.CountOp()
	if p.sink != nil {
		p.coords = p.Vector.Coords(p.coords[:0])
		p.sink.OnInstr(p.Vector.Key(), p.coords, ev, in)
	}
}

// pass2Batcher upgrades Pass2 to a trace.BatchHook when its sink
// consumes batches: the context key and coordinates are computed once
// per batch instead of once per instruction (sound because the VM
// flushes batches before every control event, and the iteration vector
// only changes on control events).
type pass2Batcher struct {
	*Pass2
	batch BatchSink
}

func (p pass2Batcher) InstrBatch(evs []trace.InstrEvent, ins []*isa.Instr) {
	p.Tree.CountOps(len(evs))
	p.Pass2.coords = p.Vector.Coords(p.Pass2.coords[:0])
	p.batch.OnInstrBatch(p.Vector.Key(), p.Pass2.coords, evs, ins)
}

// hook returns the trace.Hook to register with the VM: Pass2 itself,
// or the batching wrapper when the sink consumes batches.
func (p *Pass2) hook() trace.Hook {
	if bs, ok := p.sink.(BatchSink); ok {
		return pass2Batcher{Pass2: p, batch: bs}
	}
	return p
}

// RunPass2 executes the program a second time under full
// instrumentation and returns the pass-2 artifacts with the schedule
// tree finalized, recording into the default registry.
func RunPass2(prog *isa.Program, st *Structure, sink InstrSink, initMem func([]uint64)) (*Pass2, vm.Stats, error) {
	return RunPass2Scoped(prog, st, sink, initMem, obs.Scope{}, nil)
}

// RunPass2Scoped is RunPass2 recording its stage span and VM counters
// into sc's registry, nested under sc's parent span, governed by bud
// (nil for unlimited).
func RunPass2Scoped(prog *isa.Program, st *Structure, sink InstrSink, initMem func([]uint64), sc obs.Scope, bud *budget.Budget) (*Pass2, vm.Stats, error) {
	return runPass2(prog, st, sink, initMem, sc, bud, nil, nil)
}

// runPass2 additionally publishes live progress into tr (nil for none)
// and, when ec is non-nil, runs under the streaming epoch driver
// (stream.go): the VM pauses at epoch boundaries and resumes from a
// checkpoint when one is armed.
func runPass2(prog *isa.Program, st *Structure, sink InstrSink, initMem func([]uint64), sc obs.Scope, bud *budget.Budget, tr *progress.Tracker, ec *epochConfig) (p *Pass2, stats vm.Stats, err error) {
	name := "pass2-iiv"
	if sink != nil {
		name = "pass2-ddg"
	}
	sp := sc.StartSpan(name)
	defer sp.End()
	defer RecoverStage(name, sp, &err)
	p = NewPass2(prog, st, sink)
	m := vm.New(prog, p.hook())
	m.InitMem = initMem
	m.Obs = sc
	m.Budget = bud
	m.Progress = tr
	if ec != nil {
		if err := ec.arm(p, m, prog, st); err != nil {
			sp.Fail(err)
			return nil, vm.Stats{}, err
		}
	}
	if err := m.Run(); err != nil {
		sp.Fail(err)
		return nil, vm.Stats{}, err
	}
	sp.AddEvents(m.Stats().Ops)
	p.Tree.Finalize()
	return p, m.Stats(), nil
}
