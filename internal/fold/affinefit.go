// Package fold compresses the DDG's point streams into polyhedra with
// affine label functions — the paper's third stage (Sec. 5, detailed in
// the companion report [29]).  Folding is geometric and incremental:
// points arrive in lexicographic order (a property the IIV construction
// guarantees), each nesting level recognizes contiguous runs whose
// bounds are affine functions of the outer coordinates, and labels
// (produced values, addresses, producer coordinates) are fitted by
// exact incremental affine regression.  Streams that do not fold
// exactly degrade to bounding-box over-approximations instead of being
// dropped, which is what keeps whole-program analysis scalable.
package fold

import (
	"math/big"

	"polyprof/internal/poly"
)

// Fitter incrementally decides whether a stream of samples (x, y) with
// x in Z^m lies on an affine function y = c·x + k, using exact rational
// Gaussian elimination.  Adding samples is cheap once the function is
// determined (integer evaluation); before that, each independent sample
// extends a reduced basis.
type Fitter struct {
	m      int
	failed bool

	// rows is the reduced basis of sample equations over the m+1
	// unknown coefficients (m variable coefficients plus the constant).
	// Each row has m+2 rational entries: the coefficient columns and
	// the right-hand side.
	rows [][]*big.Rat
	// pivot[i] is the pivot column of rows[i].
	pivot []int

	// solved is the integer affine function once determined ("decided"
	// the moment the basis reaches full rank or Solve is called).
	solved   *poly.Expr
	nSamples int
}

// NewFitter creates a fitter for x in Z^m.
func NewFitter(m int) *Fitter {
	return &Fitter{m: m}
}

// Failed reports whether some sample contradicted affinity (or an exact
// rational fit exists but is not integer).
func (f *Fitter) Failed() bool { return f.failed }

// Samples returns the number of samples fed.
func (f *Fitter) Samples() int { return f.nSamples }

// Add feeds one sample; returns false once the stream is known to be
// non-affine.
func (f *Fitter) Add(x []int64, y int64) bool {
	if f.failed {
		return false
	}
	f.nSamples++
	if f.solved != nil {
		if f.solved.Eval(x) != y {
			f.fail()
		}
		return !f.failed
	}
	// Build the equation row [x..., 1 | y].
	row := make([]*big.Rat, f.m+2)
	for i := 0; i < f.m; i++ {
		row[i] = new(big.Rat).SetInt64(x[i])
	}
	row[f.m] = new(big.Rat).SetInt64(1)
	row[f.m+1] = new(big.Rat).SetInt64(y)

	f.reduce(row)
	lead := f.leadCol(row)
	switch {
	case lead == -1:
		if row[f.m+1].Sign() != 0 {
			// 0 = nonzero: inconsistent, not affine.
			f.fail()
		}
		// Otherwise the row vanished entirely: redundant sample.
	default:
		f.insertRow(row, lead)
		if len(f.rows) == f.m+1 {
			// Full rank: the function is uniquely determined.
			f.trySolve()
		}
	}
	return !f.failed
}

// pivotOrder visits the constant column first so underdetermined
// streams solve to the "most constant" integral function (a stream that
// never varied a coordinate fits as a constant rather than as a
// fractional multiple of that coordinate).
func (f *Fitter) pivotOrder(i int) int {
	if i == 0 {
		return f.m
	}
	return i - 1
}

func (f *Fitter) fail() {
	f.failed = true
	f.rows = nil
	f.solved = nil
}

// reduce eliminates the row against the current basis.
func (f *Fitter) reduce(row []*big.Rat) {
	for i, r := range f.rows {
		p := f.pivot[i]
		if row[p].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Quo(row[p], r[p])
		for j := 0; j < len(row); j++ {
			row[j] = new(big.Rat).Sub(row[j], new(big.Rat).Mul(factor, r[j]))
		}
	}
}

// leadCol returns the pivot column of the reduced row (constant column
// preferred), or -1 when no coefficient column is nonzero.
func (f *Fitter) leadCol(row []*big.Rat) int {
	for i := 0; i <= f.m; i++ {
		j := f.pivotOrder(i)
		if row[j].Sign() != 0 {
			return j
		}
	}
	return -1
}

// insertRow adds the reduced row to the basis and back-eliminates it
// from existing rows to keep reduced row-echelon form.
func (f *Fitter) insertRow(row []*big.Rat, lead int) {
	for i, r := range f.rows {
		if r[lead].Sign() == 0 {
			continue
		}
		factor := new(big.Rat).Quo(r[lead], row[lead])
		for j := 0; j < len(r); j++ {
			r[j] = new(big.Rat).Sub(r[j], new(big.Rat).Mul(factor, row[j]))
		}
		f.rows[i] = r
	}
	f.rows = append(f.rows, row)
	f.pivot = append(f.pivot, lead)
}

// trySolve extracts the unique solution and checks integrality.
func (f *Fitter) trySolve() {
	e, ok := f.solveExpr()
	if !ok {
		f.fail()
		return
	}
	f.solved = &e
	f.rows, f.pivot = nil, nil
}

// solveExpr solves the current (possibly underdetermined) system with
// free coefficients set to zero; returns false when the solution is not
// integral.
func (f *Fitter) solveExpr() (poly.Expr, bool) {
	coeffs := make([]*big.Rat, f.m+1)
	for i := range coeffs {
		coeffs[i] = new(big.Rat)
	}
	for i, r := range f.rows {
		// Rows are in reduced row-echelon form:
		// r[p]*c_p + sum over free columns j of r[j]*c_j = rhs.
		// With free coefficients fixed at zero, c_p = rhs / r[p].
		p := f.pivot[i]
		val := new(big.Rat).Set(r[f.m+1])
		coeffs[p] = val.Quo(val, r[p])
	}
	e := poly.NewExpr(f.m)
	for i := 0; i <= f.m; i++ {
		if !coeffs[i].IsInt() {
			return poly.Expr{}, false
		}
		v := coeffs[i].Num().Int64()
		if i == f.m {
			e.K = v
		} else {
			e.C[i] = v
		}
	}
	return e, true
}

// Solve returns the fitted affine function.  For underdetermined
// streams (a coordinate never varied) free coefficients are zero, which
// fits every observed sample.  ok is false if the stream was non-affine
// or empty.
func (f *Fitter) Solve() (poly.Expr, bool) {
	if f.failed || f.nSamples == 0 {
		return poly.Expr{}, false
	}
	if f.solved != nil {
		return *f.solved, true
	}
	return f.solveExpr()
}
