// Folder ownership assertions.  Folders are deliberately not
// concurrency-safe: every stream's points must arrive in their global
// sequential order, so each folder must be owned by exactly one
// goroutine at a time.  The sharded dependence engine
// (internal/parddg) relies on that ownership discipline for its
// bit-for-bit equivalence with the sequential builder; these optional
// assertions turn a silent ownership violation (two goroutines folding
// into one stream) into an immediate panic.  Disabled they cost a
// single atomic load per Add/Finish; the parddg tests enable them.
package fold

import "sync/atomic"

// ownershipChecks gates the reentrancy assertions process-wide.
var ownershipChecks atomic.Bool

// SetOwnershipChecks toggles the concurrent-ownership assertions on
// every folder in the process.  Intended for tests of concurrent
// folder consumers; returns the previous setting.
func SetOwnershipChecks(on bool) bool { return ownershipChecks.Swap(on) }

// guard is a reentrancy detector embedded in Folder and MultiFolder.
type guard struct{ busy atomic.Bool }

func (g *guard) enter(what string) {
	if !g.busy.CompareAndSwap(false, true) {
		panic("fold: concurrent " + what + " — folder entered by a second goroutine; every stream must have exactly one owner")
	}
}

func (g *guard) leave() { g.busy.Store(false) }
