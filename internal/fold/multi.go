package fold

import (
	"math/big"

	"polyprof/internal/obs"
)

// Check reports whether the sample is consistent with the fitter's
// current state without mutating it: an already-determined function
// must evaluate to y; an undetermined basis must not reduce the sample
// to a contradiction (rank extension is consistent).
func (f *Fitter) Check(x []int64, y int64) bool {
	if f.failed {
		return false
	}
	if f.solved != nil {
		return f.solved.Eval(x) == y
	}
	row := make([]*big.Rat, f.m+2)
	for i := 0; i < f.m; i++ {
		row[i] = new(big.Rat).SetInt64(x[i])
	}
	row[f.m] = new(big.Rat).SetInt64(1)
	row[f.m+1] = new(big.Rat).SetInt64(y)
	f.reduce(row)
	if f.leadCol(row) == -1 && row[f.m+1].Sign() != 0 {
		return false
	}
	return true
}

// checkLabels tests a whole label vector against the folder's fitters.
func (f *Folder) checkLabels(coords, label []int64) bool {
	if f.buffering {
		// Fast-path folders have no fitters yet.  A point identical to
		// a uniform buffer is trivially consistent (one repeated sample
		// constrains nothing it would contradict); anything else forces
		// the fitters into existence.
		if f.bufSameAll && len(f.buf) > 0 &&
			equalCoords(coords, f.buf[0].coords) && equalCoords(label, f.buf[0].label) {
			return true
		}
		f.materialize()
	}
	for i, fit := range f.labelFit {
		if !fit.Check(coords, label[i]) {
			return false
		}
	}
	return true
}

// MultiFolder folds one dependence stream into a *union* of pieces,
// each with its own affine label function — the general case of the
// paper's folding (Sec. 5): dependencies of in-place stencils or
// boundary-clamped code are piecewise affine, and a single affine map
// cannot represent them.  Points are classified greedily against the
// existing pieces' fitters; unclassifiable points (beyond MaxPieces)
// fall into an over-approximated remainder piece with no map.
type MultiFolder struct {
	dim, labelW int
	maxPieces   int

	pieces   []*Folder
	overflow *Folder // points no piece accepts; nil until needed
	points   uint64

	// Obs is the span-context fold metrics publish into; the zero
	// Scope targets the process-wide default registry.  Propagated to
	// every piece folder this multi-folder creates.
	Obs obs.Scope

	g guard
}

// DefaultMaxPieces bounds the union size per dependence.
const DefaultMaxPieces = 4

// NewMultiFolder creates a piecewise folder.
func NewMultiFolder(dim, labelW, maxPieces int) *MultiFolder {
	if maxPieces <= 0 {
		maxPieces = DefaultMaxPieces
	}
	return &MultiFolder{dim: dim, labelW: labelW, maxPieces: maxPieces}
}

// Points returns the number of points folded.
func (m *MultiFolder) Points() uint64 { return m.points }

// Add classifies and folds one point.
func (m *MultiFolder) Add(coords, label []int64) {
	if ownershipChecks.Load() {
		m.g.enter("MultiFolder.Add")
		defer m.g.leave()
	}
	m.points++
	for _, p := range m.pieces {
		if p.checkLabels(coords, label) {
			p.Add(coords, label)
			return
		}
	}
	if len(m.pieces) < m.maxPieces {
		p := NewFolder(m.dim, m.labelW)
		p.Obs = m.Obs
		p.Add(coords, label)
		m.pieces = append(m.pieces, p)
		return
	}
	if m.overflow == nil {
		m.overflow = NewFolder(m.dim, 0)
		m.overflow.Obs = m.Obs
	}
	m.overflow.Add(coords, nil)
}

// Finish returns the folded union.  Pieces other than the first are
// generally over-approximated boxes (their points arrive with holes),
// which is sound for dependence-distance bounds.
func (m *MultiFolder) Finish() []Piece {
	if ownershipChecks.Load() {
		m.g.enter("MultiFolder.Finish")
		defer m.g.leave()
	}
	var out []Piece
	for _, p := range m.pieces {
		out = append(out, p.Finish())
	}
	if m.overflow != nil {
		op := m.overflow.Finish()
		op.Fn = nil
		op.Exact = false
		out = append(out, op)
		m.Obs.Add("fold.multi.overflow", 1)
	}
	m.Obs.Observe("fold.multi.pieces", uint64(len(out)))
	return out
}
