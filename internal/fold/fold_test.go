package fold

import (
	"testing"
	"testing/quick"

	"polyprof/internal/poly"
)

func TestFitterExactLinear(t *testing.T) {
	f := NewFitter(2)
	// y = 2i - 3j + 5
	for i := int64(0); i < 4; i++ {
		for j := int64(0); j < 4; j++ {
			if !f.Add([]int64{i, j}, 2*i-3*j+5) {
				t.Fatalf("fit failed at (%d,%d)", i, j)
			}
		}
	}
	e, ok := f.Solve()
	if !ok {
		t.Fatal("no solution")
	}
	if e.C[0] != 2 || e.C[1] != -3 || e.K != 5 {
		t.Errorf("solved %v, want 2i - 3j + 5", e)
	}
}

func TestFitterRejectsNonAffine(t *testing.T) {
	f := NewFitter(1)
	for i := int64(0); i < 5; i++ {
		f.Add([]int64{i}, i*i)
	}
	if !f.Failed() {
		t.Error("quadratic stream must fail")
	}
	if _, ok := f.Solve(); ok {
		t.Error("Solve must fail after contradiction")
	}
}

func TestFitterRejectsRationalSolution(t *testing.T) {
	f := NewFitter(1)
	// y = i/2 on even points only: exact rational fit, not integer.
	f.Add([]int64{0}, 0)
	f.Add([]int64{2}, 1)
	f.Add([]int64{4}, 2)
	if _, ok := f.Solve(); ok {
		t.Error("rational-coefficient fit must be rejected")
	}
}

func TestFitterUnderdetermined(t *testing.T) {
	// Only one sample: constant fit (free coefficients zero).
	f := NewFitter(2)
	f.Add([]int64{3, 4}, 7)
	e, ok := f.Solve()
	if !ok {
		t.Fatal("no solution for single sample")
	}
	if e.Eval([]int64{3, 4}) != 7 {
		t.Errorf("solution %v does not fit the sample", e)
	}
}

func TestFitterConstantThenVarying(t *testing.T) {
	// First samples share j; later samples disambiguate.
	f := NewFitter(2)
	pts := [][3]int64{{0, 0, 1}, {1, 0, 3}, {2, 0, 5}, {0, 1, 11}, {1, 1, 13}}
	for _, p := range pts {
		if !f.Add([]int64{p[0], p[1]}, p[2]) {
			t.Fatalf("fit failed at %v", p)
		}
	}
	e, ok := f.Solve() // y = 2i + 10j + 1
	if !ok || e.C[0] != 2 || e.C[1] != 10 || e.K != 1 {
		t.Errorf("solved %v ok=%v, want 2i + 10j + 1", e, ok)
	}
}

func addRect(f *Folder, ni, nj int64, label func(i, j int64) []int64) {
	for i := int64(0); i < ni; i++ {
		for j := int64(0); j < nj; j++ {
			f.Add([]int64{i, j}, label(i, j))
		}
	}
}

func TestFoldRectangleDomain(t *testing.T) {
	f := NewFolder(2, 0)
	addRect(f, 16, 43, func(i, j int64) []int64 { return nil })
	p := f.Finish()
	if !p.Exact {
		t.Fatalf("rectangle must fold exactly: %v", p)
	}
	if p.Points != 16*43 {
		t.Errorf("points = %d, want %d", p.Points, 16*43)
	}
	if n, exact := p.Dom.PointCount(10000); n != 16*43 || !exact {
		t.Errorf("domain has %d points (exact=%v), want %d", n, exact, 16*43)
	}
	for _, pt := range [][]int64{{0, 0}, {15, 42}} {
		if !p.Dom.Contains(pt) {
			t.Errorf("domain missing %v", pt)
		}
	}
	for _, pt := range [][]int64{{16, 0}, {0, 43}, {-1, 0}} {
		if p.Dom.Contains(pt) {
			t.Errorf("domain wrongly contains %v", pt)
		}
	}
}

func TestFoldTriangleDomain(t *testing.T) {
	// { (i,j) : 0 <= i < 6, 0 <= j <= i } — the affine upper bound j <= i
	// must be recognized.
	f := NewFolder(2, 0)
	var n uint64
	for i := int64(0); i < 6; i++ {
		for j := int64(0); j <= i; j++ {
			f.Add([]int64{i, j}, nil)
			n++
		}
	}
	p := f.Finish()
	if !p.Exact {
		t.Fatalf("triangle must fold exactly: %v", p)
	}
	if cnt, exact := p.Dom.PointCount(1000); cnt != int64(n) || !exact {
		t.Errorf("point count %d, want %d", cnt, n)
	}
	if p.Dom.Contains([]int64{2, 3}) {
		t.Error("triangle must exclude j > i")
	}
}

func TestFoldStridedDomain(t *testing.T) {
	// Lattice extension: a stride-2 loop folds exactly into a strided
	// domain containing exactly the even points.
	f := NewFolder(1, 0)
	for i := int64(0); i < 20; i += 2 {
		f.Add([]int64{i}, nil)
	}
	p := f.Finish()
	if !p.Exact {
		t.Fatalf("strided stream must fold exactly with lattice support: %v", p)
	}
	if n, exact := p.Dom.PointCount(100); n != 10 || !exact {
		t.Errorf("lattice domain has %d points, want 10", n)
	}
	if p.Dom.Contains([]int64{3}) || !p.Dom.Contains([]int64{4}) {
		t.Errorf("lattice membership wrong: %v", p.Dom)
	}
}

func TestFoldDomainWithHolesApproximates(t *testing.T) {
	// Irregular (non-constant) steps still over-approximate.
	f := NewFolder(1, 0)
	for _, i := range []int64{0, 2, 3, 7, 11, 12} {
		f.Add([]int64{i}, nil)
	}
	p := f.Finish()
	if p.Exact {
		t.Fatal("irregular stream must over-approximate")
	}
	if !p.Dom.Approx {
		t.Error("approx flag not set on domain")
	}
	lo, hi, lok, hok := p.Dom.IntBounds(poly.Var(1, 0))
	if !lok || !hok || lo != 0 || hi != 12 {
		t.Errorf("box = [%d,%d], want [0,12]", lo, hi)
	}

	// With the lattice extension disabled (the paper's baseline), even
	// a constant stride over-approximates — the ablation case.
	g := NewFolder(1, 0)
	g.DetectStrides = false
	for i := int64(0); i < 20; i += 2 {
		g.Add([]int64{i}, nil)
	}
	if q := g.Finish(); q.Exact {
		t.Fatal("stride without lattice support must over-approximate")
	}
}

func TestFoldRestartApproximates(t *testing.T) {
	f := NewFolder(1, 0)
	for i := int64(0); i < 5; i++ {
		f.Add([]int64{i}, nil)
	}
	for i := int64(0); i < 5; i++ { // restart: not lexicographic
		f.Add([]int64{i}, nil)
	}
	p := f.Finish()
	if p.Exact {
		t.Fatal("restarted stream must over-approximate")
	}
}

// TestFoldTable2 reproduces the paper's Tables 1 and 2: folding the
// dependency streams of the backprop kernel must produce rectangular
// domains with the identity map for I1→I2 and I2→I4 and the (cj, ck-1)
// map with ck >= 1 for the I4→I4 accumulation.
func TestFoldTable2(t *testing.T) {
	const nj, nk = 16, 43

	// I1 -> I2 and I2 -> I4: producer == consumer instance.
	ident := NewFolder(2, 2)
	addRect(ident, nj, nk, func(i, j int64) []int64 { return []int64{i, j} })
	p := ident.Finish()
	if !p.Exact || p.Fn == nil {
		t.Fatalf("identity dep must fold exactly with a map: %v", p)
	}
	if !p.Fn.Equal(poly.Identity(2)) {
		t.Errorf("map = %v, want identity", p.Fn)
	}

	// I4 -> I4: sum accumulation, producer = (cj, ck-1), domain ck >= 1.
	acc := NewFolder(2, 2)
	for j := int64(0); j < nj; j++ {
		for k := int64(1); k < nk; k++ {
			acc.Add([]int64{j, k}, []int64{j, k - 1})
		}
	}
	q := acc.Finish()
	if !q.Exact || q.Fn == nil {
		t.Fatalf("accumulation dep must fold exactly: %v", q)
	}
	want := poly.NewMap(2, 2)
	want.Rows[0] = poly.Var(2, 0)
	want.Rows[1] = poly.Var(2, 1).Sub(poly.Const(2, 1))
	if !q.Fn.Equal(want) {
		t.Errorf("map = %v, want %v", q.Fn, want)
	}
	if q.Dom.Contains([]int64{0, 0}) {
		t.Error("domain must exclude ck = 0")
	}
	if !q.Dom.Contains([]int64{0, 1}) || !q.Dom.Contains([]int64{15, 42}) {
		t.Error("domain missing interior points")
	}
}

// TestFoldSCEVLabel reproduces the I5 example from Sec. 5: the value
// stream a(cj, ck) = 0*cj + 1*ck + 1 must be recognized.
func TestFoldSCEVLabel(t *testing.T) {
	f := NewFolder(2, 1)
	addRect(f, 16, 43, func(j, k int64) []int64 { return []int64{k + 1} })
	p := f.Finish()
	if p.Fn == nil {
		t.Fatal("SCEV label not recognized")
	}
	e := p.Fn.Rows[0]
	if e.C[0] != 0 || e.C[1] != 1 || e.K != 1 {
		t.Errorf("SCEV = %v, want ck + 1", e)
	}
}

func TestFoldNonAffineLabelKeepsDomain(t *testing.T) {
	f := NewFolder(1, 1)
	for i := int64(0); i < 10; i++ {
		f.Add([]int64{i}, []int64{i * i})
	}
	p := f.Finish()
	if !p.Exact {
		t.Error("domain should stay exact")
	}
	if p.Fn != nil {
		t.Error("quadratic label must not produce a map")
	}
}

func TestFoldDuplicatesSameLabel(t *testing.T) {
	f := NewFolder(1, 1)
	for i := int64(0); i < 5; i++ {
		f.Add([]int64{i}, []int64{2 * i})
		f.Add([]int64{i}, []int64{2 * i}) // duplicate consumer instance
	}
	p := f.Finish()
	if !p.Exact || p.Points != 5 {
		t.Errorf("exact=%v points=%d, want true 5", p.Exact, p.Points)
	}
	if p.Fn == nil || p.Fn.Rows[0].C[0] != 2 {
		t.Errorf("label map lost on duplicates: %v", p.Fn)
	}
}

func TestFoldZeroDim(t *testing.T) {
	f := NewFolder(0, 1)
	f.Add(nil, []int64{42})
	p := f.Finish()
	if !p.Exact || p.Points != 1 {
		t.Errorf("zero-dim stream: exact=%v points=%d", p.Exact, p.Points)
	}
	if p.Fn == nil || p.Fn.Rows[0].K != 42 {
		t.Errorf("constant label lost: %v", p.Fn)
	}
}

func TestFoldEmpty(t *testing.T) {
	f := NewFolder(2, 0)
	p := f.Finish()
	if p.Points != 0 {
		t.Errorf("empty stream points = %d", p.Points)
	}
}

// TestFoldRandomBoxes is a property test: any dense box with any affine
// label folds exactly and the recovered polyhedron contains exactly the
// fed points.
func TestFoldRandomBoxes(t *testing.T) {
	prop := func(lo0, lo1 int8, e0, e1 uint8, a, b, c int8) bool {
		l0, l1 := int64(lo0%10), int64(lo1%10)
		n0, n1 := int64(e0%5)+1, int64(e1%5)+1
		f := NewFolder(2, 1)
		var n int64
		for i := l0; i < l0+n0; i++ {
			for j := l1; j < l1+n1; j++ {
				f.Add([]int64{i, j}, []int64{int64(a)*i + int64(b)*j + int64(c)})
				n++
			}
		}
		p := f.Finish()
		if !p.Exact || p.Fn == nil {
			return false
		}
		cnt, exact := p.Dom.PointCount(10000)
		if !exact || cnt != n {
			return false
		}
		fn := p.Fn.Rows[0]
		return fn.Eval([]int64{l0, l1}) == int64(a)*l0+int64(b)*l1+int64(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
