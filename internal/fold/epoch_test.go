package fold

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
)

func pieceKey(p Piece) string {
	s := fmt.Sprintf("exact=%v points=%d dom=%s", p.Exact, p.Points, p.Dom)
	if p.Fn != nil {
		s += " fn=" + p.Fn.String()
	}
	return s
}

func piecesKey(ps []Piece) string {
	out := ""
	for _, p := range ps {
		out += pieceKey(p) + ";"
	}
	return out
}

// genStream builds a stream of (coords,label) points: mostly
// lexicographic affine streams, sometimes with noise so approx paths and
// multi-piece classification get exercised.
func genStream(r *rand.Rand, dim, labelW, n int) [][2][]int64 {
	var pts [][2][]int64
	base := r.Int63n(5)
	noisy := r.Intn(3) == 0
	coords := make([]int64, dim)
	for i := 0; i < n; i++ {
		// advance lexicographically with occasional jumps
		k := dim - 1
		if dim > 1 && r.Intn(4) == 0 {
			k = r.Intn(dim)
		}
		coords[k]++
		for j := k + 1; j < dim; j++ {
			coords[j] = 0
		}
		label := make([]int64, labelW)
		for j := range label {
			label[j] = base + 2*coords[0]
			if dim > 1 {
				label[j] += 3 * coords[dim-1]
			}
			if noisy && r.Intn(5) == 0 {
				label[j] += r.Int63n(7)
			}
		}
		pts = append(pts, [2][]int64{append([]int64(nil), coords...), label})
	}
	return pts
}

func TestFolderCloneAndStateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + r.Intn(3)
		labelW := r.Intn(2)
		n := r.Intn(40)
		pts := genStream(r, dim, labelW, n)
		cut := 0
		if n > 0 {
			cut = r.Intn(n)
		}

		ref := NewFolder(dim, labelW)
		for _, p := range pts {
			ref.Add(p[0], p[1])
		}
		want := pieceKey(ref.Finish())

		// Clone mid-stream: both the clone and a state round-trip must
		// finish identically to the uninterrupted fold.
		live := NewFolder(dim, labelW)
		for _, p := range pts[:cut] {
			live.Add(p[0], p[1])
		}
		cl := live.Clone()

		blob, err := json.Marshal(live.State())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var st FolderState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		restored, err := RestoreFolder(st)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}

		for _, p := range pts[cut:] {
			cl.Add(p[0], p[1])
			restored.Add(p[0], p[1])
		}
		if got := pieceKey(cl.Finish()); got != want {
			t.Fatalf("trial %d: clone diverged\n got %s\nwant %s", trial, got, want)
		}
		if got := pieceKey(restored.Finish()); got != want {
			t.Fatalf("trial %d: state round-trip diverged\n got %s\nwant %s", trial, got, want)
		}
	}
}

func TestMultiFolderCloneAndStateRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		dim := 1 + r.Intn(2)
		n := r.Intn(60)
		pts := genStream(r, dim, 1, n)
		cut := 0
		if n > 0 {
			cut = r.Intn(n)
		}

		ref := NewMultiFolder(dim, 1, DefaultMaxPieces)
		for _, p := range pts {
			ref.Add(p[0], p[1])
		}
		want := piecesKey(ref.Finish())

		live := NewMultiFolder(dim, 1, DefaultMaxPieces)
		for _, p := range pts[:cut] {
			live.Add(p[0], p[1])
		}
		cl := live.Clone()
		blob, err := json.Marshal(live.State())
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var st MultiFolderState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		restored, err := RestoreMultiFolder(st)
		if err != nil {
			t.Fatalf("restore: %v", err)
		}
		for _, p := range pts[cut:] {
			cl.Add(p[0], p[1])
			restored.Add(p[0], p[1])
		}
		if got := piecesKey(cl.Finish()); got != want {
			t.Fatalf("trial %d: clone diverged\n got %s\nwant %s", trial, got, want)
		}
		if got := piecesKey(restored.Finish()); got != want {
			t.Fatalf("trial %d: state round-trip diverged\n got %s\nwant %s", trial, got, want)
		}
	}
}

// The clone must be fully independent: folding the clone to completion
// must not disturb the live folder.
func TestCloneIndependence(t *testing.T) {
	f := NewFolder(2, 1)
	for i := int64(0); i < 20; i++ {
		f.Add([]int64{i / 5, i % 5}, []int64{2 * i})
	}
	c := f.Clone()
	_ = c.Finish()
	for i := int64(20); i < 40; i++ {
		f.Add([]int64{i / 5, i % 5}, []int64{2 * i})
	}
	ref := NewFolder(2, 1)
	for i := int64(0); i < 40; i++ {
		ref.Add([]int64{i / 5, i % 5}, []int64{2 * i})
	}
	if got, want := pieceKey(f.Finish()), pieceKey(ref.Finish()); got != want {
		t.Fatalf("live folder disturbed by clone finish:\n got %s\nwant %s", got, want)
	}
}
