package fold

import (
	"fmt"
	"math/rand"
	"testing"
)

// foldBoth runs the same stream through a fast-path folder and a folder
// with the buffer disabled from the start, returning both pieces.
func foldBoth(dim, labelW int, stream []bufPoint) (fast, slow Piece) {
	ff := NewFolder(dim, labelW)
	sf := NewFolder(dim, labelW)
	sf.materialize() // empty buffer: every Add goes straight to the recognizer
	for _, p := range stream {
		ff.Add(p.coords, p.label)
		sf.Add(p.coords, p.label)
	}
	return ff.Finish(), sf.Finish()
}

func requireSamePiece(t *testing.T, fast, slow Piece) {
	t.Helper()
	if fast.String() != slow.String() {
		t.Fatalf("fast path diverged:\n fast: %s\n slow: %s", fast.String(), slow.String())
	}
	if fast.Exact != slow.Exact || fast.Points != slow.Points {
		t.Fatalf("fast path metadata diverged: exact %v/%v points %d/%d",
			fast.Exact, slow.Exact, fast.Points, slow.Points)
	}
	if (fast.Fn == nil) != (slow.Fn == nil) {
		t.Fatalf("fast path fn presence diverged: %v vs %v", fast.Fn, slow.Fn)
	}
}

// TestSmallStreamEquivalence: the buffered fast path and the full
// recognizer produce identical pieces on hand-picked stream shapes,
// including the ones that cross the buffering threshold.
func TestSmallStreamEquivalence(t *testing.T) {
	pt := func(label int64, coords ...int64) bufPoint {
		return bufPoint{coords: coords, label: []int64{label}}
	}
	cases := []struct {
		name   string
		stream []bufPoint
	}{
		{"empty", nil},
		{"single point", []bufPoint{pt(7, 3, 5)}},
		{"single point duplicated", []bufPoint{pt(7, 3, 5), pt(7, 3, 5), pt(7, 3, 5)}},
		{"single point conflicting labels", []bufPoint{pt(7, 3, 5), pt(9, 3, 5)}},
		{"two distinct points", []bufPoint{pt(1, 0, 0), pt(2, 0, 1)}},
		{"affine row", []bufPoint{pt(0, 0, 0), pt(2, 0, 1), pt(4, 0, 2), pt(6, 0, 3)}},
		{"strided run", []bufPoint{pt(0, 0), pt(0, 3), pt(0, 6), pt(0, 9)}},
		{"non-lexicographic", []bufPoint{pt(0, 5), pt(0, 2)}},
		{"rectangle", []bufPoint{
			pt(0, 0, 0), pt(1, 0, 1), pt(2, 1, 0), pt(3, 1, 1),
		}},
	}
	// A dense row long enough to overflow the buffer and replay.
	var long []bufPoint
	for i := int64(0); i < 2*smallStreamThreshold; i++ {
		long = append(long, pt(3*i+1, 0, i))
	}
	cases = append(cases, struct {
		name   string
		stream []bufPoint
	}{"past the threshold", long})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dim := 2
			if len(tc.stream) > 0 {
				dim = len(tc.stream[0].coords)
			}
			fast, slow := foldBoth(dim, 1, tc.stream)
			requireSamePiece(t, fast, slow)
		})
	}
}

// TestSmallStreamEquivalenceRandom: random tiny streams around the
// buffering threshold agree between the two paths.
func TestSmallStreamEquivalenceRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		dim := 1 + rng.Intn(3)
		n := rng.Intn(smallStreamThreshold + 4)
		stream := make([]bufPoint, 0, n)
		cur := make([]int64, dim)
		for i := 0; i < n; i++ {
			// Mostly advance lexicographically, sometimes duplicate,
			// sometimes jump irregularly.
			switch rng.Intn(4) {
			case 0: // duplicate previous point
			case 1: // irregular jump
				cur[rng.Intn(dim)] += int64(1 + rng.Intn(5))
			default: // dense innermost advance
				cur[dim-1]++
			}
			p := bufPoint{coords: append([]int64(nil), cur...),
				label: []int64{int64(rng.Intn(6)) * cur[dim-1]}}
			stream = append(stream, p)
		}
		fast, slow := foldBoth(dim, 1, stream)
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			requireSamePiece(t, fast, slow)
		})
	}
}

// TestSmallStreamMultiFolder: the piecewise folder still classifies
// correctly when its pieces are in the buffered state — repeated points
// stay on the uniform shortcut, divergent ones force materialization.
func TestSmallStreamMultiFolder(t *testing.T) {
	m := NewMultiFolder(1, 1, 4)
	// Three identical points: one buffered piece, never materialized.
	for i := 0; i < 3; i++ {
		m.Add([]int64{2}, []int64{5})
	}
	// A conflicting label at the same coordinate: must start piece 2.
	m.Add([]int64{2}, []int64{9})
	pieces := m.Finish()
	if len(pieces) != 2 {
		t.Fatalf("pieces = %d, want 2 (%v)", len(pieces), pieces)
	}
	for i, p := range pieces {
		if !p.Exact || p.Points != 1 || p.Fn == nil {
			t.Fatalf("piece %d = %s (exact %v points %d)", i, p, p.Exact, p.Points)
		}
	}
}

// BenchmarkSinglePointStream measures what the satellite claims: tiny
// streams skip the polyhedron/fitter setup entirely.
func BenchmarkSinglePointStream(b *testing.B) {
	coords, label := []int64{3, 5}, []int64{7}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := NewFolder(2, 1)
			f.Add(coords, label)
			f.Finish()
		}
	})
	b.Run("slow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			f := NewFolder(2, 1)
			f.materialize()
			f.Add(coords, label)
			f.Finish()
		}
	})
}
