// Epoch support for streaming profiling: deep clones (provisional
// reports fold a clone so the live folder keeps accepting points — the
// recognizer's Finish is destructive) and an exact serializable state
// (epoch checkpoints persist folders through the jobstore WAL and
// restore them bit-identically on resume).
//
// The state format is JSON-friendly: big.Rat basis rows serialize as
// "num/den" strings, everything else is plain integers.  Restore is the
// exact inverse of State — a restored folder continues the stream as if
// it had never stopped, which is what makes resumed reports
// byte-identical to uninterrupted ones.
package fold

import (
	"fmt"
	"math/big"

	"polyprof/internal/faultinject"
	"polyprof/internal/poly"
)

// epochMergeFault injects at the epoch snapshot path (chaos point
// "fold.epoch.merge"): it fires while a provisional/checkpoint epoch
// merge is capturing folder state, the window where a crash must not
// corrupt the live stream.  HitPanic because State has no error return;
// the epoch driver in core recovers panics into attempt errors.
var epochMergeFault = faultinject.Point("fold.epoch.merge")

// Clone returns a deep copy of the fitter; the copy and the original
// evolve independently.
func (f *Fitter) Clone() *Fitter {
	c := &Fitter{m: f.m, failed: f.failed, nSamples: f.nSamples}
	if f.solved != nil {
		e := f.solved.Clone()
		c.solved = &e
	}
	if f.rows != nil {
		c.rows = make([][]*big.Rat, len(f.rows))
		for i, r := range f.rows {
			row := make([]*big.Rat, len(r))
			for j, v := range r {
				row[j] = new(big.Rat).Set(v)
			}
			c.rows[i] = row
		}
		c.pivot = append([]int(nil), f.pivot...)
	}
	return c
}

// Clone returns a deep copy of the folder (fresh ownership guard; the
// clone may be finished on another goroutine).
func (f *Folder) Clone() *Folder {
	c := &Folder{
		dim:           f.dim,
		labelW:        f.labelW,
		started:       f.started,
		points:        f.points,
		total:         f.total,
		exact:         f.exact,
		lexOK:         f.lexOK,
		DetectStrides: f.DetectStrides,
		labelDup:      f.labelDup,
		buffering:     f.buffering,
		bufSameCoords: f.bufSameCoords,
		bufSameAll:    f.bufSameAll,
		Obs:           f.Obs,
		prev:          append([]int64(nil), f.prev...),
		minBox:        append([]int64(nil), f.minBox...),
		maxBox:        append([]int64(nil), f.maxBox...),
		lastLbl:       append([]int64(nil), f.lastLbl...),
	}
	c.labelFit = make([]*Fitter, len(f.labelFit))
	for i, fit := range f.labelFit {
		c.labelFit[i] = fit.Clone()
	}
	c.levels = make([]levelState, len(f.levels))
	for i, lv := range f.levels {
		cl := lv
		if lv.loFit != nil {
			cl.loFit = lv.loFit.Clone()
			cl.hiFit = lv.hiFit.Clone()
		}
		c.levels[i] = cl
	}
	if f.buf != nil {
		c.buf = make([]bufPoint, len(f.buf))
		for i, p := range f.buf {
			c.buf[i] = bufPoint{
				coords: append([]int64(nil), p.coords...),
				label:  append([]int64(nil), p.label...),
			}
		}
	}
	return c
}

// Clone returns a deep copy of the piecewise folder.
func (m *MultiFolder) Clone() *MultiFolder {
	c := &MultiFolder{dim: m.dim, labelW: m.labelW, maxPieces: m.maxPieces, points: m.points, Obs: m.Obs}
	c.pieces = make([]*Folder, len(m.pieces))
	for i, p := range m.pieces {
		c.pieces[i] = p.Clone()
	}
	if m.overflow != nil {
		c.overflow = m.overflow.Clone()
	}
	return c
}

// FitterState is the serializable form of a Fitter.  Basis rows are
// exact rationals rendered as "num/den" strings (big.Rat has no JSON
// representation of its own).
type FitterState struct {
	M        int        `json:"m"`
	Failed   bool       `json:"failed,omitempty"`
	Rows     [][]string `json:"rows,omitempty"`
	Pivot    []int      `json:"pivot,omitempty"`
	Solved   *poly.Expr `json:"solved,omitempty"`
	NSamples int        `json:"n"`
}

// State captures the fitter for checkpointing.
func (f *Fitter) State() FitterState {
	s := FitterState{M: f.m, Failed: f.failed, NSamples: f.nSamples}
	if f.solved != nil {
		e := f.solved.Clone()
		s.Solved = &e
	}
	if f.rows != nil {
		s.Rows = make([][]string, len(f.rows))
		for i, r := range f.rows {
			row := make([]string, len(r))
			for j, v := range r {
				row[j] = v.RatString()
			}
			s.Rows[i] = row
		}
		s.Pivot = append([]int(nil), f.pivot...)
	}
	return s
}

// RestoreFitter rebuilds a fitter from its checkpointed state.
func RestoreFitter(s FitterState) (*Fitter, error) {
	f := &Fitter{m: s.M, failed: s.Failed, nSamples: s.NSamples}
	if s.Solved != nil {
		e := s.Solved.Clone()
		f.solved = &e
	}
	if s.Rows != nil {
		f.rows = make([][]*big.Rat, len(s.Rows))
		for i, r := range s.Rows {
			row := make([]*big.Rat, len(r))
			for j, v := range r {
				rat, ok := new(big.Rat).SetString(v)
				if !ok {
					return nil, fmt.Errorf("fold: bad rational %q in fitter state", v)
				}
				row[j] = rat
			}
			f.rows[i] = row
		}
		f.pivot = append([]int(nil), s.Pivot...)
	}
	return f, nil
}

// LevelStateData serializes one run-recognition level.
type LevelStateData struct {
	GroupFirst int64        `json:"gf"`
	PrevVal    int64        `json:"pv"`
	Holes      bool         `json:"holes,omitempty"`
	Stride     int64        `json:"stride,omitempty"`
	LoFit      *FitterState `json:"lo,omitempty"`
	HiFit      *FitterState `json:"hi,omitempty"`
}

// BufPointData serializes one buffered fast-path point.
type BufPointData struct {
	Coords []int64 `json:"c"`
	Label  []int64 `json:"l,omitempty"`
}

// FolderState is the serializable form of a Folder.
type FolderState struct {
	Dim           int              `json:"dim"`
	LabelW        int              `json:"labelw"`
	LabelFit      []FitterState    `json:"labelfit,omitempty"`
	Levels        []LevelStateData `json:"levels,omitempty"`
	Prev          []int64          `json:"prev,omitempty"`
	MinBox        []int64          `json:"min,omitempty"`
	MaxBox        []int64          `json:"max,omitempty"`
	Started       bool             `json:"started,omitempty"`
	Points        uint64           `json:"points,omitempty"`
	Total         uint64           `json:"total,omitempty"`
	Exact         bool             `json:"exact"`
	LexOK         bool             `json:"lex"`
	DetectStrides bool             `json:"strides"`
	LabelDup      bool             `json:"labeldup,omitempty"`
	LastLbl       []int64          `json:"lastlbl,omitempty"`
	Buffering     bool             `json:"buffering,omitempty"`
	Buf           []BufPointData   `json:"buf,omitempty"`
	BufSameCoords bool             `json:"bufsamec,omitempty"`
	BufSameAll    bool             `json:"bufsamea,omitempty"`
}

// State captures the folder for checkpointing.  The chaos point
// fold.epoch.merge fires here: capturing folder state is the epoch
// merge's critical section.
func (f *Folder) State() FolderState {
	epochMergeFault.HitPanic()
	s := FolderState{
		Dim: f.dim, LabelW: f.labelW,
		Prev: append([]int64(nil), f.prev...), MinBox: append([]int64(nil), f.minBox...),
		MaxBox: append([]int64(nil), f.maxBox...), Started: f.started,
		Points: f.points, Total: f.total, Exact: f.exact, LexOK: f.lexOK,
		DetectStrides: f.DetectStrides, LabelDup: f.labelDup,
		LastLbl:   append([]int64(nil), f.lastLbl...),
		Buffering: f.buffering, BufSameCoords: f.bufSameCoords, BufSameAll: f.bufSameAll,
	}
	for _, fit := range f.labelFit {
		s.LabelFit = append(s.LabelFit, fit.State())
	}
	for i := range f.levels {
		lv := &f.levels[i]
		d := LevelStateData{GroupFirst: lv.groupFirst, PrevVal: lv.prevVal, Holes: lv.holes, Stride: lv.stride}
		if lv.loFit != nil {
			lo := lv.loFit.State()
			hi := lv.hiFit.State()
			d.LoFit, d.HiFit = &lo, &hi
		}
		s.Levels = append(s.Levels, d)
	}
	for _, p := range f.buf {
		s.Buf = append(s.Buf, BufPointData{
			Coords: append([]int64(nil), p.coords...),
			Label:  append([]int64(nil), p.label...),
		})
	}
	return s
}

// RestoreFolder rebuilds a folder from its checkpointed state.
func RestoreFolder(s FolderState) (*Folder, error) {
	f := &Folder{
		dim: s.Dim, labelW: s.LabelW,
		prev: make([]int64, s.Dim), minBox: make([]int64, s.Dim), maxBox: make([]int64, s.Dim),
		started: s.Started, points: s.Points, total: s.Total,
		exact: s.Exact, lexOK: s.LexOK, DetectStrides: s.DetectStrides,
		labelDup:  s.LabelDup,
		buffering: s.Buffering, bufSameCoords: s.BufSameCoords, bufSameAll: s.BufSameAll,
	}
	copy(f.prev, s.Prev)
	copy(f.minBox, s.MinBox)
	copy(f.maxBox, s.MaxBox)
	if s.LabelW > 0 {
		f.lastLbl = make([]int64, s.LabelW)
		copy(f.lastLbl, s.LastLbl)
	}
	f.labelFit = make([]*Fitter, s.LabelW)
	for i := range f.labelFit {
		if i < len(s.LabelFit) {
			fit, err := RestoreFitter(s.LabelFit[i])
			if err != nil {
				return nil, err
			}
			f.labelFit[i] = fit
		} else {
			f.labelFit[i] = NewFitter(s.Dim)
		}
	}
	f.levels = make([]levelState, s.Dim)
	for i := range f.levels {
		if i >= len(s.Levels) {
			continue
		}
		d := s.Levels[i]
		lv := levelState{groupFirst: d.GroupFirst, prevVal: d.PrevVal, holes: d.Holes, stride: d.Stride}
		if d.LoFit != nil {
			lo, err := RestoreFitter(*d.LoFit)
			if err != nil {
				return nil, err
			}
			hi, err := RestoreFitter(*d.HiFit)
			if err != nil {
				return nil, err
			}
			lv.loFit, lv.hiFit = lo, hi
		}
		f.levels[i] = lv
	}
	for _, p := range s.Buf {
		f.buf = append(f.buf, bufPoint{
			coords: append([]int64(nil), p.Coords...),
			label:  append([]int64(nil), p.Label...),
		})
	}
	return f, nil
}

// MultiFolderState is the serializable form of a MultiFolder.
type MultiFolderState struct {
	Dim       int           `json:"dim"`
	LabelW    int           `json:"labelw"`
	MaxPieces int           `json:"maxp"`
	Pieces    []FolderState `json:"pieces,omitempty"`
	Overflow  *FolderState  `json:"overflow,omitempty"`
	Points    uint64        `json:"points,omitempty"`
}

// State captures the piecewise folder for checkpointing.
func (m *MultiFolder) State() MultiFolderState {
	s := MultiFolderState{Dim: m.dim, LabelW: m.labelW, MaxPieces: m.maxPieces, Points: m.points}
	for _, p := range m.pieces {
		s.Pieces = append(s.Pieces, p.State())
	}
	if m.overflow != nil {
		o := m.overflow.State()
		s.Overflow = &o
	}
	return s
}

// RestoreMultiFolder rebuilds a piecewise folder from its state.
func RestoreMultiFolder(s MultiFolderState) (*MultiFolder, error) {
	m := &MultiFolder{dim: s.Dim, labelW: s.LabelW, maxPieces: s.MaxPieces, points: s.Points}
	for _, ps := range s.Pieces {
		p, err := RestoreFolder(ps)
		if err != nil {
			return nil, err
		}
		m.pieces = append(m.pieces, p)
	}
	if s.Overflow != nil {
		o, err := RestoreFolder(*s.Overflow)
		if err != nil {
			return nil, err
		}
		m.overflow = o
	}
	return m, nil
}
