package fold

import (
	"fmt"

	"polyprof/internal/faultinject"
	"polyprof/internal/obs"
	"polyprof/internal/poly"
)

// finishFault injects at stream folding; error-shaped injections panic
// here and are converted back to errors by the fold-finish stage
// recovery in core.
var finishFault = faultinject.Point("fold.finish")

// Piece is one folded element: an iteration-domain polyhedron plus, when
// it could be fitted, an affine function mapping domain points to the
// stream's labels (produced values, addresses, or producer
// coordinates).
type Piece struct {
	Dom *poly.Poly
	// Fn maps domain coordinates to labels; nil when the labels were
	// not affine.
	Fn *poly.Map
	// Exact is true when Dom describes exactly the observed points;
	// false for bounding-box over-approximations.
	Exact bool
	// Points is the number of observed (non-duplicate) points.
	Points uint64
}

// String renders the piece for reports.
func (p Piece) String() string {
	s := p.Dom.String()
	if p.Fn != nil {
		s += " -> " + p.Fn.String()
	}
	if !p.Exact {
		s += " (approx)"
	}
	return s
}

// levelState tracks run recognition at one nesting depth.
type levelState struct {
	groupFirst int64 // first value of the current run
	prevVal    int64 // last value seen in the current run
	holes      bool  // irregular steps were observed inside a run
	stride     int64 // detected constant step (0 until established)
	loFit      *Fitter
	hiFit      *Fitter
}

// Folder incrementally folds one stream of (coords, label) points that
// arrive in lexicographic coordinate order.  Memory use is O(dim²)
// regardless of stream length: each level keeps only its current run
// and two incremental affine fitters for the run bounds.
type Folder struct {
	dim    int
	labelW int

	labelFit []*Fitter
	levels   []levelState

	prev    []int64
	minBox  []int64
	maxBox  []int64
	started bool

	points uint64 // distinct points
	total  uint64 // including duplicates
	exact  bool
	lexOK  bool

	// DetectStrides enables the lattice extension: runs advancing by a
	// constant step > 1 fold exactly into a strided domain instead of
	// degrading to a bounding box.  The paper lists lattices as an
	// unsupported case (Sec. 8); polyprof implements them and the
	// ablation benchmark measures the difference.  On by default.
	DetectStrides bool
	labelDup      bool // duplicate coords carried different labels
	lastLbl       []int64

	// Small-stream fast path: the first few points are buffered without
	// touching the run recognizer or the big.Rat fitters.  Most
	// dependence streams are tiny (see the fold.stream.points
	// histogram); a single-distinct-point stream finishes directly with
	// constant bounds, and anything larger replays the buffer through
	// the full recognizer with identical results.
	buffering     bool
	buf           []bufPoint
	bufSameCoords bool // every buffered point shares buf[0]'s coords
	bufSameAll    bool // ... and buf[0]'s label too

	// Obs is the span-context fold-outcome metrics publish into; the
	// zero Scope targets the process-wide default registry.
	Obs obs.Scope

	g guard
}

// NewFolder creates a folder for dim-dimensional coordinates and
// labelW-wide labels (0 for pure domain folding).
func NewFolder(dim, labelW int) *Folder {
	f := &Folder{
		dim:    dim,
		labelW: labelW,
		levels: make([]levelState, dim),
		prev:   make([]int64, dim),
		minBox: make([]int64, dim),
		maxBox: make([]int64, dim),
		exact:  true,
		lexOK:  true,
	}
	f.DetectStrides = true
	f.labelFit = make([]*Fitter, labelW)
	for i := range f.labelFit {
		f.labelFit[i] = NewFitter(dim)
	}
	if labelW > 0 {
		f.lastLbl = make([]int64, labelW)
	}
	f.buffering = true
	f.bufSameCoords = true
	f.bufSameAll = true
	return f
}

// smallStreamThreshold is how many Add calls the fast path buffers
// before falling back to the incremental recognizer.
const smallStreamThreshold = 8

// bufPoint is one buffered Add call (slices copied; callers reuse
// their buffers).
type bufPoint struct {
	coords, label []int64
}

// Dim returns the domain dimensionality.
func (f *Folder) Dim() int { return f.dim }

// Points returns the number of distinct points folded so far.
func (f *Folder) Points() uint64 {
	if f.buffering {
		return f.bufDistinct()
	}
	return f.points
}

// bufDistinct counts distinct points in the buffer the same way the
// recognizer does: a point is new when it differs from its predecessor.
func (f *Folder) bufDistinct() uint64 {
	var n uint64
	for i, p := range f.buf {
		if i == 0 || !equalCoords(p.coords, f.buf[i-1].coords) {
			n++
		}
	}
	return n
}

func equalCoords(a, b []int64) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// materialize replays the buffered points through the incremental
// recognizer, leaving the folder in exactly the state a non-buffered
// sequence of Add calls would have produced.
func (f *Folder) materialize() {
	if !f.buffering {
		return
	}
	f.buffering = false
	buf := f.buf
	f.buf = nil
	for _, p := range buf {
		f.add(p.coords, p.label)
	}
}

// Add feeds one point.  label must have the folder's label width.
func (f *Folder) Add(coords []int64, label []int64) {
	if ownershipChecks.Load() {
		f.g.enter("Folder.Add")
		defer f.g.leave()
	}
	if f.buffering {
		if len(f.buf) < smallStreamThreshold {
			bp := bufPoint{coords: append([]int64(nil), coords...)}
			if len(label) > 0 {
				bp.label = append([]int64(nil), label...)
			}
			if len(f.buf) > 0 {
				if !equalCoords(coords, f.buf[0].coords) {
					f.bufSameCoords = false
					f.bufSameAll = false
				} else if !equalCoords(bp.label, f.buf[0].label) {
					f.bufSameAll = false
				}
			}
			f.buf = append(f.buf, bp)
			return
		}
		f.materialize()
	}
	f.add(coords, label)
}

// add is the incremental recognizer behind Add.
func (f *Folder) add(coords []int64, label []int64) {
	f.total++
	for i := range f.labelFit {
		f.labelFit[i].Add(coords, label[i])
	}
	if !f.started {
		f.started = true
		f.points = 1
		copy(f.prev, coords)
		copy(f.minBox, coords)
		copy(f.maxBox, coords)
		for k := 0; k < f.dim; k++ {
			f.levels[k] = levelState{groupFirst: coords[k], prevVal: coords[k]}
		}
		copy(f.lastLbl, label)
		return
	}

	// Locate the outermost changed coordinate.
	k := 0
	for ; k < f.dim; k++ {
		if coords[k] != f.prev[k] {
			break
		}
	}
	if k == f.dim {
		// Exact duplicate of the previous point (several dependence
		// events can share a consumer instance).  Domain structure is
		// unaffected.
		for i := range label {
			if label[i] != f.lastLbl[i] {
				f.labelDup = true
			}
		}
		return
	}
	f.points++
	if coords[k] < f.prev[k] {
		// The stream restarted; the exact recognizer only handles
		// lexicographically increasing streams.
		f.lexOK = false
		f.exact = false
	}

	// Close the runs of all deeper levels against the old prefix.
	for j := f.dim - 1; j > k; j-- {
		f.closeRun(j)
		f.levels[j].groupFirst = coords[j]
		f.levels[j].prevVal = coords[j]
	}
	// Advance the run at level k: dense (+1) or a constant stride.
	lv := &f.levels[k]
	diff := coords[k] - f.prev[k]
	switch {
	case diff == 1:
		if lv.stride > 1 {
			lv.holes = true
			f.exact = false
		} else {
			lv.stride = 1
		}
	case f.DetectStrides && diff > 1 && (lv.stride == 0 || lv.stride == diff):
		lv.stride = diff
	default:
		lv.holes = true
		f.exact = false
	}
	lv.prevVal = coords[k]

	copy(f.prev, coords)
	for i, c := range coords {
		if c < f.minBox[i] {
			f.minBox[i] = c
		}
		if c > f.maxBox[i] {
			f.maxBox[i] = c
		}
	}
	copy(f.lastLbl, label)
}

// closeRun records the completed run of level j (bounds as a function
// of the outer prefix f.prev[0:j]).
func (f *Folder) closeRun(j int) {
	lv := &f.levels[j]
	if lv.loFit == nil {
		lv.loFit = NewFitter(j)
		lv.hiFit = NewFitter(j)
	}
	prefix := f.prev[:j]
	if !lv.loFit.Add(prefix, lv.groupFirst) {
		f.exact = false
	}
	if !lv.hiFit.Add(prefix, lv.prevVal) {
		f.exact = false
	}
}

// Finish closes all open runs and returns the folded piece.  Returns a
// zero-point piece for empty streams.
func (f *Folder) Finish() Piece {
	if ownershipChecks.Load() {
		f.g.enter("Folder.Finish")
		defer f.g.leave()
	}
	finishFault.HitPanic()
	if f.buffering {
		if p, ok := f.finishSmall(); ok {
			return p
		}
		f.materialize()
	}
	if !f.started {
		f.noteFinish(Piece{Exact: true})
		return Piece{Dom: poly.NewPoly(f.dim), Exact: true}
	}
	for j := f.dim - 1; j >= 0; j-- {
		f.closeRun(j)
	}

	var fn *poly.Map
	if !f.labelDup {
		m := poly.NewMap(f.dim, f.labelW)
		ok := true
		for i, fit := range f.labelFit {
			e, solved := fit.Solve()
			if !solved {
				ok = false
				break
			}
			m.Rows[i] = e
		}
		if ok && f.labelW > 0 {
			fn = &m
		}
	}

	if f.exact {
		dom := poly.NewPoly(f.dim)
		good := true
		for k := 0; k < f.dim; k++ {
			lv := &f.levels[k]
			lo, okLo := lv.loFit.Solve()
			hi, okHi := lv.hiFit.Solve()
			if !okLo || !okHi {
				good = false
				break
			}
			loE := embed(lo, f.dim)
			dom.AddLowerExpr(k, loE)
			dom.AddUpperExpr(k, embed(hi, f.dim))
			if lv.stride > 1 {
				// Lattice extension: runs advanced by a constant step,
				// anchored at the (affine) lower bound.
				dom.AddStride(k, lv.stride, loE)
			}
		}
		if good {
			p := Piece{Dom: dom, Fn: fn, Exact: true, Points: f.points}
			f.noteFinish(p)
			return p
		}
	}

	// Over-approximation: the bounding box of every observed point.
	dom := poly.NewPoly(f.dim)
	dom.Approx = true
	for k := 0; k < f.dim; k++ {
		dom.AddRange(k, f.minBox[k], f.maxBox[k])
	}
	p := Piece{Dom: dom, Fn: fn, Exact: false, Points: f.points}
	f.noteFinish(p)
	return p
}

// finishSmall resolves the buffered stream directly when it never left
// its first point: the domain is the single-point box {c} and every
// label function is the constant the point carried — exactly what the
// fitters would solve to from one sample (the elimination pivots on the
// constant column first), without ever allocating them.  Streams with
// two or more distinct points fall back to the recognizer.
func (f *Folder) finishSmall() (Piece, bool) {
	if len(f.buf) == 0 {
		f.noteFinish(Piece{Exact: true})
		return Piece{Dom: poly.NewPoly(f.dim), Exact: true}, true
	}
	if !f.bufSameCoords {
		return Piece{}, false
	}
	first := f.buf[0]
	dom := poly.NewPoly(f.dim)
	for k := 0; k < f.dim; k++ {
		e := poly.NewExpr(f.dim)
		e.K = first.coords[k]
		dom.AddLowerExpr(k, e)
		dom.AddUpperExpr(k, e)
	}
	var fn *poly.Map
	if f.bufSameAll && f.labelW > 0 {
		m := poly.NewMap(f.dim, f.labelW)
		for i := range m.Rows {
			e := poly.NewExpr(f.dim)
			e.K = first.label[i]
			m.Rows[i] = e
		}
		fn = &m
	}
	p := Piece{Dom: dom, Fn: fn, Exact: true, Points: 1}
	f.noteFinish(p)
	return p, true
}

// noteFinish publishes fold-outcome metrics: how many streams folded,
// and whether each came out exact-affine or as a bounding-box
// over-approximation.  Called once per stream (at Finish), never on the
// per-point path.
func (f *Folder) noteFinish(p Piece) {
	if !f.Obs.Enabled() {
		return
	}
	f.Obs.Add("fold.streams", 1)
	if p.Exact {
		f.Obs.Add("fold.streams.exact", 1)
	} else {
		f.Obs.Add("fold.streams.approx", 1)
	}
	f.Obs.Observe("fold.stream.points", p.Points)
}

// embed widens an expression over the first k variables to dim
// variables.
func embed(e poly.Expr, dim int) poly.Expr {
	if e.Dim() == dim {
		return e
	}
	w := poly.NewExpr(dim)
	copy(w.C, e.C)
	w.K = e.K
	return w
}

// Describe summarizes the folder state for diagnostics.
func (f *Folder) Describe() string {
	return fmt.Sprintf("folder(dim=%d points=%d exact=%v lex=%v)", f.dim, f.Points(), f.exact, f.lexOK)
}
