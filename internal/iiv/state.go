package iiv

import (
	"fmt"
	"strconv"

	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/isa"
)

// Epoch-checkpoint serialization.  Vectors and schedule trees reference
// CFG loops and recursive components by pointer; checkpoints store the
// element keys ("L3", "R1", "b17") and an ElemResolver re-binds them
// against the structure a resumed run re-derives — pass 1 is
// deterministic, so loop and component IDs are stable across attempts.

// ElemResolver maps element keys back to live structure pointers.
type ElemResolver struct {
	loops map[int]*cfg.Loop
	comps map[int]*cg.Component
}

// NewElemResolver indexes a run's loop forest and component set.
func NewElemResolver(forest *cfg.Forest, comps *cg.ComponentSet) *ElemResolver {
	r := &ElemResolver{loops: map[int]*cfg.Loop{}, comps: map[int]*cg.Component{}}
	if forest != nil {
		for _, l := range forest.Loops {
			r.loops[l.ID] = l
		}
	}
	if comps != nil {
		for _, c := range comps.Components {
			r.comps[c.ID] = c
		}
	}
	return r
}

// Resolve turns an element key back into an Elem.
func (r *ElemResolver) Resolve(key string) (Elem, error) {
	if key == "" {
		return Elem{}, fmt.Errorf("iiv: empty element key")
	}
	id, err := strconv.Atoi(key[1:])
	if err != nil {
		return Elem{}, fmt.Errorf("iiv: bad element key %q", key)
	}
	switch key[0] {
	case 'L':
		l := r.loops[id]
		if l == nil {
			return Elem{}, fmt.Errorf("iiv: unknown loop L%d in checkpoint", id)
		}
		return loopElem(l), nil
	case 'R':
		c := r.comps[id]
		if c == nil {
			return Elem{}, fmt.Errorf("iiv: unknown component R%d in checkpoint", id)
		}
		return compElem(c), nil
	case 'b':
		return blockElem(isa.BlockID(id)), nil
	}
	return Elem{}, fmt.Errorf("iiv: bad element key %q", key)
}

// DimState serializes one vector dimension.
type DimState struct {
	IV  int64    `json:"iv"`
	Ctx []string `json:"ctx"`
}

// VectorState is the serializable form of a Vector.
type VectorState struct {
	Dims []DimState `json:"dims"`
}

// State captures the vector for checkpointing.
func (v *Vector) State() VectorState {
	var s VectorState
	for _, d := range v.dims {
		ds := DimState{IV: d.IV}
		for _, e := range d.Ctx {
			ds.Ctx = append(ds.Ctx, e.Key())
		}
		s.Dims = append(s.Dims, ds)
	}
	return s
}

// RestoreVector rebuilds a vector from its checkpointed state.
func RestoreVector(s VectorState, r *ElemResolver) (*Vector, error) {
	v := &Vector{dirty: true}
	for _, ds := range s.Dims {
		d := Dim{IV: ds.IV}
		for _, k := range ds.Ctx {
			e, err := r.Resolve(k)
			if err != nil {
				return nil, err
			}
			d.Ctx = append(d.Ctx, e)
		}
		v.dims = append(v.dims, d)
	}
	if len(v.dims) == 0 {
		v.dims = []Dim{{}}
	}
	return v, nil
}

// TreeNodeState serializes one schedule-tree node; children recurse in
// static (first-execution) order, so StaticIdx is implied by position.
type TreeNodeState struct {
	Elem     string          `json:"e,omitempty"` // "" only for the root
	SelfOps  uint64          `json:"self,omitempty"`
	Iters    uint64          `json:"iters,omitempty"`
	CtxKey   string          `json:"ctx,omitempty"`
	Children []TreeNodeState `json:"ch,omitempty"`
}

// TreeState is the serializable form of a Tree.
type TreeState struct {
	Root   TreeNodeState `json:"root"`
	CurCtx string        `json:"cur,omitempty"`
}

func nodeState(n *TreeNode) TreeNodeState {
	s := TreeNodeState{SelfOps: n.SelfOps, Iters: n.Iters, CtxKey: n.CtxKey}
	if !n.IsRoot() {
		s.Elem = n.Elem.Key()
	}
	for _, c := range n.Children {
		s.Children = append(s.Children, nodeState(c))
	}
	return s
}

// State captures the tree for checkpointing (TotalOps is derived by
// Finalize and not stored).
func (t *Tree) State() TreeState {
	s := TreeState{Root: nodeState(t.Root)}
	if t.cur != nil {
		s.CurCtx = t.cur.CtxKey
	}
	return s
}

// RestoreTree rebuilds a schedule tree from its checkpointed state.
func RestoreTree(s TreeState, r *ElemResolver) (*Tree, error) {
	t := NewTree()
	var build func(dst *TreeNode, src TreeNodeState) error
	build = func(dst *TreeNode, src TreeNodeState) error {
		dst.SelfOps = src.SelfOps
		dst.Iters = src.Iters
		dst.CtxKey = src.CtxKey
		if src.CtxKey != "" {
			t.byCtx[src.CtxKey] = dst
		}
		for _, cs := range src.Children {
			e, err := r.Resolve(cs.Elem)
			if err != nil {
				return err
			}
			child := dst.child(e)
			if err := build(child, cs); err != nil {
				return err
			}
		}
		return nil
	}
	if err := build(t.Root, s.Root); err != nil {
		return nil, err
	}
	if s.CurCtx != "" {
		t.cur = t.byCtx[s.CurCtx]
		if t.cur == nil {
			return nil, fmt.Errorf("iiv: checkpoint current context %q not in tree", s.CurCtx)
		}
	}
	return t, nil
}

// Clone deep-copies the tree so a provisional report can Finalize and
// render the copy while the live tree keeps counting.
func (t *Tree) Clone() *Tree {
	c := NewTree()
	var rec func(dst, src *TreeNode)
	rec = func(dst, src *TreeNode) {
		dst.SelfOps = src.SelfOps
		dst.TotalOps = src.TotalOps
		dst.Iters = src.Iters
		dst.CtxKey = src.CtxKey
		if src.CtxKey != "" {
			c.byCtx[src.CtxKey] = dst
		}
		if src == t.cur {
			c.cur = dst
		}
		for _, ch := range src.Children {
			rec(dst.child(ch.Elem), ch)
		}
	}
	rec(c.Root, t.Root)
	return c
}
