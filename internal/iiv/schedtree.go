package iiv

import (
	"fmt"
	"sort"
	"strings"
)

// TreeNode is one node of the dynamic schedule tree: the structure that
// unifies the polyhedral schedule tree with the calling-context tree
// (paper Fig. 5).  Interior nodes are context elements (blocks the
// execution passed through, loops, recursive components); leaves carry
// the dynamic instruction counts of the statements executed under that
// exact context.
type TreeNode struct {
	Elem   Elem // undefined for the root
	Parent *TreeNode

	Children []*TreeNode
	index    map[string]*TreeNode

	// StaticIdx is the node's Kelly-mapping static index: the position
	// of the node among its siblings in first-execution order, which for
	// our generated code coincides with the topological order of the
	// reduced DAG the paper numbers.
	StaticIdx int

	// SelfOps counts dynamic instructions whose context path ends here.
	SelfOps uint64
	// TotalOps is SelfOps plus all descendants' (set by Finalize).
	TotalOps uint64
	// Iters counts iterations for loop/component nodes.
	Iters uint64

	// CtxKey is the vector context key for leaf contexts touched at this
	// node ("" if the node was never an innermost context).
	CtxKey string
}

// IsRoot reports whether the node is the tree root.
func (n *TreeNode) IsRoot() bool { return n.Parent == nil }

func (n *TreeNode) child(e Elem) *TreeNode {
	k := e.Key()
	if c, ok := n.index[k]; ok {
		return c
	}
	c := &TreeNode{Elem: e, Parent: n, StaticIdx: len(n.Children), index: map[string]*TreeNode{}}
	if n.index == nil {
		n.index = map[string]*TreeNode{}
	}
	n.index[k] = c
	n.Children = append(n.Children, c)
	return c
}

// Path renders the root-to-node context path.
func (n *TreeNode) Path(name Namer) string {
	if n.IsRoot() {
		return "<root>"
	}
	var parts []string
	for cur := n; cur != nil && !cur.IsRoot(); cur = cur.Parent {
		parts = append(parts, name(cur.Elem))
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return strings.Join(parts, "/")
}

// Tree is the dynamic schedule tree of one execution.
type Tree struct {
	Root *TreeNode

	cur    *TreeNode // leaf for the current context
	byCtx  map[string]*TreeNode
	frozen bool
}

// NewTree creates an empty dynamic schedule tree.
func NewTree() *Tree {
	return &Tree{
		Root:  &TreeNode{index: map[string]*TreeNode{}},
		byCtx: map[string]*TreeNode{},
	}
}

// Touch positions the tree's current leaf at the context described by
// the vector, creating nodes as needed.  Call it after every control
// event; CountOp then attributes instructions to the right leaf.
func (t *Tree) Touch(v *Vector) *TreeNode {
	n := t.Root
	for _, d := range v.dims {
		for _, e := range d.Ctx {
			n = n.child(e)
		}
	}
	if n.CtxKey == "" {
		key := v.Key()
		n.CtxKey = key
		t.byCtx[key] = n
	}
	t.cur = n
	return n
}

// NoteIteration increments the iteration counter of the innermost live
// loop node (the loop element closing the second-innermost dimension).
func (t *Tree) NoteIteration(v *Vector) {
	if len(v.dims) < 2 {
		return
	}
	n := t.Root
	for i := 0; i < len(v.dims)-1; i++ {
		for _, e := range v.dims[i].Ctx {
			n = n.child(e)
		}
	}
	n.Iters++
}

// CountOp attributes one executed instruction to the current context.
func (t *Tree) CountOp() {
	if t.cur != nil {
		t.cur.SelfOps++
	}
}

// CountOps attributes n executed instructions to the current context
// (the batched-emission equivalent of n CountOp calls).
func (t *Tree) CountOps(n int) {
	if t.cur != nil {
		t.cur.SelfOps += uint64(n)
	}
}

// NodeByCtx returns the leaf node for a context key, or nil.
func (t *Tree) NodeByCtx(key string) *TreeNode { return t.byCtx[key] }

// Finalize computes aggregated operation counts bottom-up.  It is
// idempotent.
func (t *Tree) Finalize() {
	var agg func(n *TreeNode) uint64
	agg = func(n *TreeNode) uint64 {
		total := n.SelfOps
		for _, c := range n.Children {
			total += agg(c)
		}
		n.TotalOps = total
		return total
	}
	agg(t.Root)
	t.frozen = true
}

// TotalOps returns the whole execution's dynamic instruction count
// (valid after Finalize).
func (t *Tree) TotalOps() uint64 { return t.Root.TotalOps }

// Walk visits every node in depth-first order (children in static
// order).
func (t *Tree) Walk(f func(n *TreeNode, depth int)) {
	var rec func(n *TreeNode, d int)
	rec = func(n *TreeNode, d int) {
		f(n, d)
		for _, c := range n.Children {
			rec(c, d+1)
		}
	}
	rec(t.Root, 0)
}

// Render prints an indented view of the tree, heaviest nodes first at
// each level, for diagnostics and the textual feedback report.
func (t *Tree) Render(name Namer, minOps uint64) string {
	var sb strings.Builder
	var rec func(n *TreeNode, depth int)
	rec = func(n *TreeNode, depth int) {
		if !n.IsRoot() {
			if n.TotalOps < minOps {
				return
			}
			fmt.Fprintf(&sb, "%s%s(%d)", strings.Repeat("  ", depth-1), name(n.Elem), n.StaticIdx)
			if n.Elem.IsLoop() {
				fmt.Fprintf(&sb, " iters=%d", n.Iters)
			}
			fmt.Fprintf(&sb, " ops=%d\n", n.TotalOps)
		}
		kids := append([]*TreeNode(nil), n.Children...)
		sort.SliceStable(kids, func(i, j int) bool { return kids[i].TotalOps > kids[j].TotalOps })
		for _, c := range kids {
			rec(c, depth+1)
		}
	}
	rec(t.Root, 0)
	return sb.String()
}
