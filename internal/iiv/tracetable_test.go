package iiv_test

import (
	"fmt"
	"strings"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/iiv"
	"polyprof/internal/loopevents"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// TestFig3TraceTables renders the paper's Fig. 3(d)/(i) trace tables
// for both examples and checks their structural landmarks: Example 1
// reaches the two-dimensional interprocedural vector; Example 2 shows
// the recursion entering (Ec), iterating over calls (Ic) and returns
// (Ir), and exiting (Xr) with the induction value having kept
// increasing.
func TestFig3TraceTables(t *testing.T) {
	table := func(name string) string {
		prog := workloads.ByName(name).Build()
		st, err := core.AnalyzeStructure(prog, nil)
		if err != nil {
			t.Fatal(err)
		}
		p2 := core.NewPass2(prog, st, nil)
		var events []loopevents.Event
		p2.Events = &events
		if err := vm.New(prog, p2).Run(); err != nil {
			t.Fatal(err)
		}
		return iiv.TraceTable(events, iiv.ProgramNamer(prog))
	}

	ex1 := table("example1")
	// Two nested IVs visible, e.g. "..., 1, ..., 1, ...".
	if !strings.Contains(ex1, "L") || !strings.Contains(ex1, ", 1, ") {
		t.Errorf("example1 table lacks nested IVs:\n%s", ex1)
	}
	for _, landmark := range []string{"E(L", "I(L", "X(L", "C(", "R("} {
		if !strings.Contains(ex1, landmark) {
			t.Errorf("example1 table missing %q", landmark)
		}
	}

	ex2 := table("example2")
	for _, landmark := range []string{"Ec(R", "Ic(R", "Ir(R", "Xr(R"} {
		if !strings.Contains(ex2, landmark) {
			t.Errorf("example2 table missing %q:\n%s", landmark, ex2)
		}
	}
	// The recursion IV keeps increasing: 4 must appear before the exit
	// (paper steps 21-22: Ir at IV 4, then Xr).
	xr := strings.Index(ex2, "Xr(")
	if !strings.Contains(ex2[:xr], ", 4, ") {
		t.Errorf("recursion IV never reached 4 before Xr:\n%s", ex2)
	}
	if testing.Verbose() {
		fmt.Println(ex2)
	}
}
