package iiv_test

import (
	"reflect"
	"strings"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/trace"
	"polyprof/internal/workloads"
)

// storeSink records the (context, coords) pairs of every Store executed
// in a named block.
type storeSink struct {
	prog      *isa.Program
	blockName string
	ctxs      []string
	coords    [][]int64
}

func (s *storeSink) OnControl(trace.ControlEvent) {}

func (s *storeSink) OnInstr(ctxKey string, coords []int64, ev trace.InstrEvent, in *isa.Instr) {
	if !in.Op.IsMemWrite() {
		return
	}
	if s.prog.Block(ev.Ref.Block).Name != s.blockName {
		return
	}
	s.ctxs = append(s.ctxs, ctxKey)
	s.coords = append(s.coords, append([]int64(nil), coords...))
}

func profileStores(t *testing.T, prog *isa.Program, blockName string) *storeSink {
	t.Helper()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	sink := &storeSink{prog: prog, blockName: blockName}
	if _, _, err := core.RunPass2(prog, st, sink, nil); err != nil {
		t.Fatal(err)
	}
	return sink
}

// TestFig3Example1Trace reproduces Fig. 3d: the store in B's loop body,
// reached through A's loop L1 calling B with its loop L2, must carry
// two-dimensional IIV coordinates enumerating (i, j) in lexicographic
// order, all under a single unified interprocedural context.
func TestFig3Example1Trace(t *testing.T) {
	prog := workloads.Example1()
	sink := profileStores(t, prog, "B.L2.body")

	want := [][]int64{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	if !reflect.DeepEqual(sink.coords, want) {
		t.Fatalf("coords = %v, want %v", sink.coords, want)
	}
	for _, c := range sink.ctxs {
		if c != sink.ctxs[0] {
			t.Fatalf("contexts differ across iterations: %q vs %q", sink.ctxs[0], c)
		}
	}
}

// TestFig3Example2Recursion reproduces Fig. 3i/3k: the helper C called
// underneath the recursive component of B gets a single recursion
// dimension with induction values 0,1,2 — the representation depth does
// not grow with the call stack.  The block after the recursive call
// (the paper's B5) iterates at values 3,4: it belongs to the recursive
// loop via the return-driven increments.
func TestFig3Example2Recursion(t *testing.T) {
	prog := workloads.Example2()

	// C's store: called once from D (outside recursion, depth 0) and
	// three times under B's recursion (depth 1, IVs 0..2).
	cStores := profileStores(t, prog, "C.entry")
	byDepth := map[int][][]int64{}
	byCtx := map[string]int{}
	for i, c := range cStores.coords {
		byDepth[len(c)] = append(byDepth[len(c)], c)
		byCtx[cStores.ctxs[i]]++
	}
	if got := byDepth[0]; len(got) != 1 {
		t.Errorf("calls outside recursion: got %d coords %v, want 1", len(got), got)
	}
	wantRec := [][]int64{{0}, {1}, {2}}
	if !reflect.DeepEqual(byDepth[1], wantRec) {
		t.Errorf("recursive calls coords = %v, want %v", byDepth[1], wantRec)
	}
	if len(byCtx) != 2 {
		t.Errorf("want exactly 2 distinct contexts for C's store, got %d: %v", len(byCtx), byCtx)
	}

	// The continuation store after the recursive call ("B5"): executed
	// once per unwound recursive call, at IVs 3 and 4.
	b5 := profileStores(t, prog, "B.cont")
	wantB5 := [][]int64{{3}, {4}}
	if !reflect.DeepEqual(b5.coords, wantB5) {
		t.Errorf("B5 coords = %v, want %v (folded domain {3 <= i <= 4})", b5.coords, wantB5)
	}
}

// TestScheduleTreeWeights checks the dynamic schedule tree aggregates
// operation counts and loop iteration counts.
func TestScheduleTreeWeights(t *testing.T) {
	prog := workloads.Example1()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, stats, err := core.RunPass2(prog, st, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Tree.TotalOps() != stats.Ops {
		t.Errorf("tree total %d != vm ops %d", p2.Tree.TotalOps(), stats.Ops)
	}

	// Find the L1 and L2 loop nodes and check iteration counts.  A
	// 2-trip while-shaped loop enters its header 3 times (the last
	// evaluation exits), so the outer loop records 3 and the inner loop
	// 3 per outer body execution = 6.  Statement domains are unaffected:
	// they come from folding the body coordinates (0..1).
	var iters []uint64
	p2.Tree.Walk(func(n *iiv.TreeNode, depth int) {
		if !n.IsRoot() && n.Elem.IsLoop() {
			iters = append(iters, n.Iters)
		}
	})
	if !reflect.DeepEqual(iters, []uint64{3, 6}) {
		t.Errorf("loop iteration counts = %v, want [3 6]", iters)
	}

	// Rendering must mention both loops.
	out := p2.Tree.Render(iiv.ProgramNamer(prog), 0)
	if out == "" {
		t.Fatal("empty tree rendering")
	}
	for _, want := range []string{"L", "iters=3", "iters=6"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}
