package iiv

import (
	"fmt"
	"strings"

	"polyprof/internal/loopevents"
)

// TraceTable renders a loop-event stream alongside the evolving dynamic
// interprocedural iteration vector — the exact format of the paper's
// Fig. 3(d)/(i) trace tables (step, event, dynamic IIV).  It replays
// the events through a fresh vector, so it can be applied to any
// recorded stream.
func TraceTable(events []loopevents.Event, name Namer) string {
	var sb strings.Builder
	vec := NewVector()
	fmt.Fprintf(&sb, "%4s  %-14s %s\n", "step", "event", "dynamic IIV")
	for i, ev := range events {
		vec.Apply(ev)
		fmt.Fprintf(&sb, "%4d  %-14s %s\n", i+1, renderEvent(ev, name), vec.Render(name))
	}
	return sb.String()
}

// renderEvent prints an event using workload block names.
func renderEvent(ev loopevents.Event, name Namer) string {
	blk := name(Elem{Block: ev.Block})
	switch ev.Kind {
	case loopevents.EnterLoop, loopevents.IterateLoop, loopevents.ExitLoop:
		return fmt.Sprintf("%v(L%d,%s)", ev.Kind, ev.Loop.ID, blk)
	case loopevents.EnterRec, loopevents.IterCallRec, loopevents.IterRetRec, loopevents.ExitRec:
		return fmt.Sprintf("%v(R%d,%s)", ev.Kind, ev.Comp.ID, blk)
	case loopevents.CallFn:
		return fmt.Sprintf("C(%s)", blk)
	case loopevents.ReturnFn:
		return fmt.Sprintf("R(%s)", blk)
	default:
		return fmt.Sprintf("N(%s)", blk)
	}
}
