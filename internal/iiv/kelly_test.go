package iiv_test

import (
	"regexp"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/iiv"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
	"polyprof/internal/vm"
	"polyprof/internal/workloads"
)

// buildFused builds Fig. 4's fused form: one 2D triangular nest with
// two statements S and T in the body.
func buildFused() *isa.Program {
	pb := isa.NewProgram("fused")
	a := pb.Global("A", 64)
	b := pb.Global("B", 64)
	f := pb.Func("main", 0)
	aB, bB := f.IConst(a.Base), f.IConst(b.Base)
	n := f.IConst(6)
	f.Loop("Li", f.IConst(0), n, 1, func(i isa.Reg) {
		f.Loop("Lj", f.IConst(0), f.Add(i, f.IConst(1)), 1, func(j isa.Reg) {
			f.StoreIdx(aB, f.Add(f.Mul(i, f.IConst(8)), j), 0, i) // S
			f.StoreIdx(bB, f.Add(f.Mul(i, f.IConst(8)), j), 0, j) // T
		})
	})
	f.Halt()
	pb.SetMain(f)
	return pb.MustBuild()
}

// buildFissioned builds Fig. 4's fissioned form: two consecutive 2D
// nests, S in the first and T in the second.
func buildFissioned() *isa.Program {
	pb := isa.NewProgram("fissioned")
	a := pb.Global("A", 64)
	b := pb.Global("B", 64)
	f := pb.Func("main", 0)
	aB, bB := f.IConst(a.Base), f.IConst(b.Base)
	n := f.IConst(6)
	f.Loop("Li1", f.IConst(0), n, 1, func(i isa.Reg) {
		f.Loop("Lj1", f.IConst(0), f.Add(i, f.IConst(1)), 1, func(j isa.Reg) {
			f.StoreIdx(aB, f.Add(f.Mul(i, f.IConst(8)), j), 0, i) // S
		})
	})
	f.Loop("Li2", f.IConst(0), n, 1, func(i isa.Reg) {
		f.Loop("Lj2", f.IConst(0), f.Add(i, f.IConst(1)), 1, func(j isa.Reg) {
			f.StoreIdx(bB, f.Add(f.Mul(i, f.IConst(8)), j), 0, j) // T
		})
	})
	f.Halt()
	pb.SetMain(f)
	return pb.MustBuild()
}

// loopNodesOf collects the loop nodes of the profiled schedule tree in
// static order with their depth.
func loopNodesOf(t *testing.T, prog *isa.Program) []*iiv.TreeNode {
	t.Helper()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := core.RunPass2(prog, st, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var loops []*iiv.TreeNode
	p2.Tree.Walk(func(n *iiv.TreeNode, depth int) {
		if !n.IsRoot() && n.Elem.IsLoop() {
			loops = append(loops, n)
		}
	})
	return loops
}

// TestKellyMappingFusedVsFissioned reproduces Fig. 4: in the fused
// form one loop pair hosts both statements; in the fissioned form the
// two outer loops become separate schedule-tree siblings whose static
// indices order them (Kelly's mapping numbers the reduced DAG in
// topological order), so the schedules are [0,i,0,j,{0|1}] vs.
// [{0|1},i,0,j,0] — exactly the paper's two mappings.
func TestKellyMappingFusedVsFissioned(t *testing.T) {
	fused := loopNodesOf(t, buildFused())
	if len(fused) != 2 {
		t.Fatalf("fused form has %d loop nodes, want 2 (Li ⊃ Lj)", len(fused))
	}
	if fused[1].Parent == fused[0].Parent {
		t.Error("fused Lj must nest under Li, not be its sibling")
	}

	fissioned := loopNodesOf(t, buildFissioned())
	if len(fissioned) != 4 {
		t.Fatalf("fissioned form has %d loop nodes, want 4", len(fissioned))
	}
	// The two outer loops are siblings under the same context node with
	// consecutive static indices: the [0,...] and [1,...] prefixes of
	// Kelly's mapping.
	var outers []*iiv.TreeNode
	for _, l := range fissioned {
		parentIsLoop := false
		for cur := l.Parent; cur != nil && !cur.IsRoot(); cur = cur.Parent {
			if cur.Elem.IsLoop() {
				parentIsLoop = true
				break
			}
		}
		if !parentIsLoop {
			outers = append(outers, l)
		}
	}
	if len(outers) != 2 {
		t.Fatalf("found %d outer loops, want 2", len(outers))
	}
	if outers[0].StaticIdx >= outers[1].StaticIdx {
		t.Errorf("outer loops' static indices %d, %d must be increasing (lexicographic schedule order)",
			outers[0].StaticIdx, outers[1].StaticIdx)
	}
}

// TestRenderPaperForm replays Example 1's loop events through a fresh
// vector and checks that the textual rendering reaches the paper's
// two-dimensional interprocedural form "(…/L…, i, …/L…, j, …)"
// (Fig. 3d step 8: (M0/L1, 0, A1/L2, 1, B1)).
func TestRenderPaperForm(t *testing.T) {
	prog := workloads.Example1()
	st, err := core.AnalyzeStructure(prog, nil)
	if err != nil {
		t.Fatal(err)
	}
	p2 := core.NewPass2(prog, st, nil)
	var events []loopevents.Event
	p2.Events = &events
	m := vm.New(prog, p2)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}

	vec := iiv.NewVector()
	namer := iiv.ProgramNamer(prog)
	if got := vec.Render(namer); got != "()" {
		t.Fatalf("initial vector renders %q, want ()", got)
	}
	re := regexp.MustCompile(`\(.*L\d+, 1, .*L\d+, 1, .*\)`)
	saw := false
	for _, ev := range events {
		vec.Apply(ev)
		if re.MatchString(vec.Render(namer)) {
			saw = true
		}
	}
	if !saw {
		t.Errorf("never reached the two-dimensional (…/L, 1, …/L, 1, …) form; events: %d", len(events))
	}
	if got := vec.Render(namer); got == "()" || vec.Depth() != 0 {
		// After the run the stack unwound back to depth 0.
		if vec.Depth() != 0 {
			t.Errorf("final vector depth %d, want 0 (all loops exited)", vec.Depth())
		}
	}
}
