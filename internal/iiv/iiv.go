// Package iiv implements dynamic interprocedural iteration vectors
// (paper Sec. 4): the unification of Kelly's intraprocedural iteration
// vectors with calling-context paths.  A vector alternates context
// stacks (blocks, loop ids, recursive-component ids, possibly nested
// call frames) with canonical induction variables that the profiler
// maintains itself — one dimension per live loop.  Recursive components
// contribute a single dimension whose induction variable keeps
// increasing across calls and returns to the component's headers, so the
// representation depth never grows with recursion depth.
package iiv

import (
	"fmt"
	"strconv"
	"strings"

	"polyprof/internal/cfg"
	"polyprof/internal/cg"
	"polyprof/internal/isa"
	"polyprof/internal/loopevents"
)

// Elem is one element of a context stack: a basic block, a CFG loop, or
// a recursive component.
type Elem struct {
	Block isa.BlockID // valid when Loop and Comp are nil
	Loop  *cfg.Loop
	Comp  *cg.Component
}

func blockElem(b isa.BlockID) Elem  { return Elem{Block: b} }
func loopElem(l *cfg.Loop) Elem     { return Elem{Block: isa.NoBlock, Loop: l} }
func compElem(c *cg.Component) Elem { return Elem{Block: isa.NoBlock, Comp: c} }

// Key returns a compact stable encoding of the element.
func (e Elem) Key() string {
	switch {
	case e.Loop != nil:
		return "L" + strconv.Itoa(e.Loop.ID)
	case e.Comp != nil:
		return "R" + strconv.Itoa(e.Comp.ID)
	default:
		return "b" + strconv.Itoa(int(e.Block))
	}
}

// IsLoop reports whether the element denotes a CFG loop or recursive
// component (i.e. whether the following dimension's induction variable
// belongs to it).
func (e Elem) IsLoop() bool { return e.Loop != nil || e.Comp != nil }

// Dim is one dimension: an induction variable plus a context stack.
type Dim struct {
	IV  int64
	Ctx []Elem
}

// Vector is a dynamic interprocedural iteration vector, updated from
// loop events per Alg. 3.
type Vector struct {
	dims []Dim

	key   string
	dirty bool
}

// NewVector returns the initial vector: a single dimension with an
// empty context.
func NewVector() *Vector {
	return &Vector{dims: []Dim{{}}, dirty: true}
}

// Depth returns the loop depth (number of dimensions beyond the root).
func (v *Vector) Depth() int { return len(v.dims) - 1 }

// Dims exposes the dimensions for rendering.
func (v *Vector) Dims() []Dim { return v.dims }

func (v *Vector) innermost() *Dim { return &v.dims[len(v.dims)-1] }

func (d *Dim) setLast(e Elem) {
	if len(d.Ctx) == 0 {
		d.Ctx = append(d.Ctx, e)
		return
	}
	d.Ctx[len(d.Ctx)-1] = e
}

func (d *Dim) push(e Elem) { d.Ctx = append(d.Ctx, e) }

func (d *Dim) pop() {
	if len(d.Ctx) > 0 {
		d.Ctx = d.Ctx[:len(d.Ctx)-1]
	}
}

// Apply updates the vector with one loop event (Alg. 3, extended with
// the N rule: a local jump updates the innermost context's current
// block).
func (v *Vector) Apply(ev loopevents.Event) {
	v.dirty = true
	in := v.innermost()
	switch ev.Kind {
	case loopevents.LocalJump:
		in.setLast(blockElem(ev.Block))

	case loopevents.CallFn:
		in.push(blockElem(ev.Block))

	case loopevents.ReturnFn:
		in.pop()
		in.setLast(blockElem(ev.Block))

	case loopevents.EnterLoop:
		in.setLast(loopElem(ev.Loop))
		v.dims = append(v.dims, Dim{IV: 0, Ctx: []Elem{blockElem(ev.Block)}})

	case loopevents.EnterRec:
		in.push(compElem(ev.Comp))
		v.dims = append(v.dims, Dim{IV: 0, Ctx: []Elem{blockElem(ev.Block)}})

	case loopevents.ExitLoop:
		v.removeDim()
		v.innermost().setLast(blockElem(ev.Block))

	case loopevents.ExitRec:
		v.removeDim()
		v.innermost().pop()
		v.innermost().setLast(blockElem(ev.Block))

	case loopevents.IterateLoop, loopevents.IterCallRec, loopevents.IterRetRec:
		in.IV++
		in.setLast(blockElem(ev.Block))
	}
}

func (v *Vector) removeDim() {
	if len(v.dims) > 1 {
		v.dims = v.dims[:len(v.dims)-1]
	}
}

// Coords appends the induction variables (outermost first) to buf and
// returns it.  The root dimension carries no induction variable.
func (v *Vector) Coords(buf []int64) []int64 {
	for i := 1; i < len(v.dims); i++ {
		buf = append(buf, v.dims[i].IV)
	}
	return buf
}

// Key returns a stable encoding of the non-numerical part of the vector
// (the "context" the folding stage groups by).
func (v *Vector) Key() string {
	if v.dirty {
		var sb strings.Builder
		for i := range v.dims {
			if i > 0 {
				sb.WriteByte(',')
			}
			for j, e := range v.dims[i].Ctx {
				if j > 0 {
					sb.WriteByte('/')
				}
				sb.WriteString(e.Key())
			}
		}
		v.key = sb.String()
		v.dirty = false
	}
	return v.key
}

// Namer renders context elements with human-readable names.
type Namer func(e Elem) string

// ProgramNamer builds a Namer using the program's block names.
func ProgramNamer(p *isa.Program) Namer {
	return func(e Elem) string {
		switch {
		case e.Loop != nil:
			return fmt.Sprintf("L%d", e.Loop.ID)
		case e.Comp != nil:
			return fmt.Sprintf("R%d", e.Comp.ID)
		default:
			if e.Block == isa.NoBlock {
				return "?"
			}
			return p.Block(e.Block).Name
		}
	}
}

// Render prints the vector in the paper's textual form, e.g.
// "(M0/L1, 0, A1/L2, 1, B1)".
func (v *Vector) Render(name Namer) string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, d := range v.dims {
		if i > 0 {
			fmt.Fprintf(&sb, ", %d, ", d.IV)
		}
		for j, e := range d.Ctx {
			if j > 0 {
				sb.WriteByte('/')
			}
			sb.WriteString(name(e))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}
