// Epoch support for streaming profiling, in three parts:
//
//   - Clone: a deep copy of the whole builder so a provisional report
//     can run the (destructive) FinishChecked pipeline at an epoch
//     boundary while the live builder keeps folding the stream.
//
//   - State/RestoreBuilder: exact checkpoint serialization.  Vertices
//     are keyed by (context, block/instruction ref) — both re-derivable
//     from the program image — and folders persist via the fold state
//     format, so a restored builder continues the stream bit-for-bit.
//
//   - Fold-and-release (Options.Stream): at every epoch boundary,
//     shadow records untouched during the closing epoch fold into stale
//     per-range summaries and their bytes return to the budget.  A
//     later access whose exact counterpart record was released pulls a
//     conservative bounding-box dependence from the stale summary —
//     over-approximate in the sound direction (only ADDS dependences),
//     and distinct from budget degradation: the graph is not marked
//     Degraded, because no information was lost that the summaries do
//     not cover.
package ddg

import (
	"fmt"

	"polyprof/internal/fold"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/trace"
)

// ---------------------------------------------------------------------
// Provisional clone.

// Clone deep-copies the builder so FinishChecked can run on the copy
// (for a provisional epoch report) without disturbing the live stream.
// The clone carries no budget — the coarse pairing in its Finish must
// not re-charge the live run's edge accounting — and publishes metrics
// into a detached, disabled registry.
func (b *Builder) Clone() *Builder {
	opts := b.opts
	opts.Budget = nil
	opts.Obs = obs.NewRegistry().Scope()
	c := &Builder{
		prog:          b.prog,
		opts:          opts,
		stmts:         map[string]map[isa.BlockID]*Stmt{},
		instrs:        map[string]map[trace.InstrRef]*Instr{},
		deps:          map[depKey]*Dep{},
		totalOps:      b.totalOps,
		memOps:        b.memOps,
		fpOps:         b.fpOps,
		curRegWords:   b.curRegWords,
		peakRegWords:  b.peakRegWords,
		epochN:        b.epochN,
		releasedBytes: b.releasedBytes,
		faultErr:      b.faultErr,
		pinTripped:    b.opts.Budget.Tripped(),
	}
	sm := make(map[*Stmt]*Stmt, len(b.allStmts))
	for _, s := range b.allStmts {
		cs := &Stmt{ID: s.ID, Block: s.Block, Ctx: s.Ctx, Depth: s.Depth, Count: s.Count}
		if s.folder != nil {
			cs.folder = s.folder.Clone()
			cs.folder.Obs = opts.Obs
		}
		byBlk := c.stmts[s.Ctx]
		if byBlk == nil {
			byBlk = map[isa.BlockID]*Stmt{}
			c.stmts[s.Ctx] = byBlk
		}
		byBlk[s.Block] = cs
		sm[s] = cs
		c.allStmts = append(c.allStmts, cs)
	}
	im := make(map[*Instr]*Instr, len(b.allInst))
	for _, i := range b.allInst {
		ci := new(Instr)
		*ci = *i
		ci.Stmt = sm[i.Stmt]
		if i.valueFolder != nil {
			ci.valueFolder = i.valueFolder.Clone()
			ci.valueFolder.Obs = opts.Obs
		}
		if i.accessFolder != nil {
			ci.accessFolder = i.accessFolder.Clone()
			ci.accessFolder.Obs = opts.Obs
		}
		byRef := c.instrs[i.Ctx]
		if byRef == nil {
			byRef = map[trace.InstrRef]*Instr{}
			c.instrs[i.Ctx] = byRef
		}
		byRef[i.Ref] = ci
		im[i] = ci
		c.allInst = append(c.allInst, ci)
	}
	for _, d := range b.allDeps {
		cd := &Dep{Src: im[d.Src], Dst: im[d.Dst], Kind: d.Kind, Count: d.Count, Degraded: d.Degraded}
		if d.folder != nil {
			cd.folder = d.folder.Clone()
			cd.folder.Obs = opts.Obs
		}
		if d.box != nil {
			cd.box = cloneBox(d.box)
		}
		c.deps[depKey{src: d.Src.ID, dst: d.Dst.ID, kind: d.Kind}] = cd
		c.allDeps = append(c.allDeps, cd)
	}
	if b.coarse != nil {
		c.coarse = &coarseState{ranges: map[int64]*coarseRange{}, events: b.coarse.events}
		for k, rg := range b.coarse.ranges {
			c.coarse.ranges[k] = cloneRange(rg, im)
		}
	}
	if b.stale != nil {
		c.stale = make(map[int64]*coarseRange, len(b.stale))
		for k, rg := range b.stale {
			c.stale[k] = cloneRange(rg, im)
		}
	}
	// shadow/lastRead/frames/pendings are only consulted by the event
	// hot path, never by Finish; the clone exists to be finished, so
	// they stay empty.
	return c
}

func cloneBox(b *coordBox) *coordBox {
	return &coordBox{
		lo: append([]int64(nil), b.lo...),
		hi: append([]int64(nil), b.hi...),
		n:  b.n,
	}
}

func cloneRange(rg *coarseRange, im map[*Instr]*Instr) *coarseRange {
	out := &coarseRange{writers: map[*Instr]*coordBox{}, readers: map[*Instr]*coordBox{}}
	for i, box := range rg.writers {
		out.writers[im[i]] = cloneBox(box)
	}
	for i, box := range rg.readers {
		out.readers[im[i]] = cloneBox(box)
	}
	return out
}

// ---------------------------------------------------------------------
// Streaming fold-and-release.

// staleDeps pulls conservative dependences from the stale summary of
// addr's range for the counterpart records the exact tables no longer
// hold.  needW asks for producer-side edges (Output for a write, flow
// for a read); needR asks for released last-readers (Anti, writes
// only).  Entries from other addresses in the same range over-match —
// sound, the summary only ever adds edges.
func (b *Builder) staleDeps(instr *Instr, coords []int64, addr int64, needW, needR, write bool) {
	if !needW && !needR {
		return
	}
	rg := b.stale[addr>>coarseRangeShift]
	if rg == nil {
		return
	}
	if needW && len(rg.writers) > 0 {
		kind := FlowMem
		track := true
		if write {
			kind = Output
			track = b.opts.TrackOutput
		}
		if track {
			for _, src := range sortedByID(rg.writers) {
				b.addStaleDep(src, instr, kind, coords)
			}
		}
	}
	if needR && write && b.opts.TrackAnti && len(rg.readers) > 0 {
		for _, src := range sortedByID(rg.readers) {
			b.addStaleDep(src, instr, Anti, coords)
		}
	}
}

// addStaleDep merges one stale-summary edge: a bounding-box piece in
// consumer coordinates, like a coarse edge, but NOT marked Degraded —
// releasing was a deliberate accuracy/memory trade, not a budget trip.
func (b *Builder) addStaleDep(src, dst *Instr, kind Kind, dstCoords []int64) {
	key := depKey{src: src.ID, dst: dst.ID, kind: kind}
	d, ok := b.deps[key]
	if !ok {
		b.opts.Budget.GrantEdges(1)
		d = &Dep{Src: src, Dst: dst, Kind: kind}
		b.deps[key] = d
		b.allDeps = append(b.allDeps, d)
	}
	d.Count++
	if d.box == nil {
		d.box = &coordBox{}
	}
	d.box.extend(dstCoords)
}

// staleAdd folds one released record into its range summary.
func (b *Builder) staleAdd(addr int64, instr *Instr, coords []int64, write bool) {
	key := addr >> coarseRangeShift
	rg := b.stale[key]
	if rg == nil {
		rg = &coarseRange{writers: map[*Instr]*coordBox{}, readers: map[*Instr]*coordBox{}}
		b.stale[key] = rg
	}
	tab := rg.readers
	if write {
		tab = rg.writers
	}
	box := tab[instr]
	if box == nil {
		box = &coordBox{}
		tab[instr] = box
	}
	box.extend(coords)
}

// ReleaseEpoch closes one epoch in streaming mode: every shadow record
// not touched during the closing epoch folds into its stale summary and
// returns its bytes to the budget; records touched this epoch survive
// into the next.  Reports the bytes released (0 when not streaming).
// Called by the core epoch driver with the VM paused.
func (b *Builder) ReleaseEpoch() uint64 {
	if b.stale == nil {
		return 0
	}
	var freed uint64
	release := func(recs []writerRec, write bool) {
		for a := range recs {
			rec := &recs[a]
			if rec.instr == nil || rec.seen >= b.epochN {
				continue
			}
			b.staleAdd(int64(a), rec.instr, rec.coords, write)
			freed += rec.grant
			*rec = writerRec{}
		}
	}
	release(b.shadow, true)
	release(b.lastRead, false)
	b.epochN++
	if freed > 0 {
		b.releasedBytes += freed
		b.opts.Budget.ReleaseShadow(freed)
	}
	return freed
}

// ---------------------------------------------------------------------
// Checkpoint serialization.

// RecState is one live shadow record (last writer or last reader).
type RecState struct {
	Addr   int64   `json:"a"`
	Instr  int     `json:"i"`
	Coords []int64 `json:"c,omitempty"`
	Grant  uint64  `json:"g,omitempty"`
}

// RegState is one occupied register-writer slot.
type RegState struct {
	Slot   int     `json:"s"`
	Instr  int     `json:"i"`
	Coords []int64 `json:"c,omitempty"`
}

// FrameDepState is one mirrored call frame.
type FrameDepState struct {
	NumRegs int        `json:"n"`
	Regs    []RegState `json:"regs,omitempty"`
	RetDst  isa.Reg    `json:"retdst"`
}

// StmtState is one statement vertex with its live domain folder.
type StmtState struct {
	Block  isa.BlockID      `json:"blk"`
	Ctx    string           `json:"ctx"`
	Depth  int              `json:"depth"`
	Count  uint64           `json:"count"`
	Folder fold.FolderState `json:"folder"`
}

// InstrState is one instruction vertex with its live folders.
type InstrState struct {
	Ref    trace.InstrRef    `json:"ref"`
	Ctx    string            `json:"ctx"`
	Stmt   int               `json:"stmt"`
	Count  uint64            `json:"count"`
	Value  *fold.FolderState `json:"value,omitempty"`
	Access *fold.FolderState `json:"access,omitempty"`
}

// BoxState serializes a coordinate bounding box.
type BoxState struct {
	Lo []int64 `json:"lo,omitempty"`
	Hi []int64 `json:"hi,omitempty"`
	N  uint64  `json:"n"`
}

func boxState(b *coordBox) BoxState {
	return BoxState{Lo: append([]int64(nil), b.lo...), Hi: append([]int64(nil), b.hi...), N: b.n}
}

func restoreBox(s BoxState) *coordBox {
	return &coordBox{lo: append([]int64(nil), s.Lo...), hi: append([]int64(nil), s.Hi...), n: s.N}
}

// DepState is one dependence bundle.
type DepState struct {
	Src      int                    `json:"src"`
	Dst      int                    `json:"dst"`
	Kind     uint8                  `json:"kind"`
	Count    uint64                 `json:"count"`
	Degraded bool                   `json:"degraded,omitempty"`
	Folder   *fold.MultiFolderState `json:"folder,omitempty"`
	Box      *BoxState              `json:"box,omitempty"`
}

// StaleInstrState is one instruction's box inside a stale range.
type StaleInstrState struct {
	Instr int      `json:"i"`
	Box   BoxState `json:"box"`
}

// StaleRangeState is one stale range summary.
type StaleRangeState struct {
	Key     int64             `json:"k"`
	Writers []StaleInstrState `json:"w,omitempty"`
	Readers []StaleInstrState `json:"r,omitempty"`
}

// BuilderState is the full serializable pass-2 dependence state at an
// epoch boundary.
type BuilderState struct {
	Stmts       []StmtState       `json:"stmts"`  // in ID order
	Instrs      []InstrState      `json:"instrs"` // in ID order
	Deps        []DepState        `json:"deps,omitempty"`
	Shadow      []RecState        `json:"shadow,omitempty"`
	LastRead    []RecState        `json:"lastread,omitempty"`
	Frames      []FrameDepState   `json:"frames"`
	PendingN    int               `json:"pn,omitempty"`
	PendingArgs []RegState        `json:"pargs,omitempty"`
	PendingDst  isa.Reg           `json:"pdst"`
	PendingRet  *RegState         `json:"pret,omitempty"`
	TotalOps    uint64            `json:"total"`
	MemOps      uint64            `json:"mem"`
	FPOps       uint64            `json:"fp"`
	PeakRegs    int               `json:"peakregs"`
	EpochN      uint64            `json:"epoch,omitempty"`
	Released    uint64            `json:"released,omitempty"`
	Stale       []StaleRangeState `json:"stale,omitempty"`
}

func recStates(recs []writerRec) []RecState {
	var out []RecState
	for a := range recs {
		if r := &recs[a]; r.instr != nil {
			out = append(out, RecState{Addr: int64(a), Instr: r.instr.ID,
				Coords: append([]int64(nil), r.coords...), Grant: r.grant})
		}
	}
	return out
}

func staleStates(stale map[int64]*coarseRange) []StaleRangeState {
	var out []StaleRangeState
	for k, rg := range stale {
		s := StaleRangeState{Key: k}
		for _, i := range sortedByID(rg.writers) {
			s.Writers = append(s.Writers, StaleInstrState{Instr: i.ID, Box: boxState(rg.writers[i])})
		}
		for _, i := range sortedByID(rg.readers) {
			s.Readers = append(s.Readers, StaleInstrState{Instr: i.ID, Box: boxState(rg.readers[i])})
		}
		out = append(out, s)
	}
	sortStale(out)
	return out
}

func sortStale(s []StaleRangeState) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Key < s[j-1].Key; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// Checkpointable reports whether State would succeed: degraded runs
// (coarse mode, tripped budgets, latched faults) are not serializable.
func (b *Builder) Checkpointable() bool {
	return b.faultErr == nil && b.coarse == nil && len(b.opts.Budget.Tripped()) == 0
}

// State captures the builder for checkpointing.  Degraded runs refuse:
// coarse-mode state is address-granular and monotone, so resuming it
// under a fresh budget would double-degrade; the epoch driver simply
// stops checkpointing once a budget trips.
func (b *Builder) State() (*BuilderState, error) {
	if b.faultErr != nil {
		return nil, b.faultErr
	}
	if b.coarse != nil || len(b.opts.Budget.Tripped()) > 0 {
		return nil, fmt.Errorf("ddg: run degraded under budget pressure; not checkpointable")
	}
	s := &BuilderState{
		TotalOps: b.totalOps, MemOps: b.memOps, FPOps: b.fpOps,
		PeakRegs: b.peakRegWords, EpochN: b.epochN, Released: b.releasedBytes,
		Shadow: recStates(b.shadow), LastRead: recStates(b.lastRead),
		PendingDst: b.pendingDst,
	}
	for _, st := range b.allStmts {
		s.Stmts = append(s.Stmts, StmtState{
			Block: st.Block, Ctx: st.Ctx, Depth: st.Depth, Count: st.Count,
			Folder: st.folder.State(),
		})
	}
	for _, i := range b.allInst {
		is := InstrState{Ref: i.Ref, Ctx: i.Ctx, Stmt: i.Stmt.ID, Count: i.Count}
		if i.valueFolder != nil {
			v := i.valueFolder.State()
			is.Value = &v
		}
		if i.accessFolder != nil {
			v := i.accessFolder.State()
			is.Access = &v
		}
		s.Instrs = append(s.Instrs, is)
	}
	for _, d := range b.allDeps {
		ds := DepState{Src: d.Src.ID, Dst: d.Dst.ID, Kind: uint8(d.Kind), Count: d.Count, Degraded: d.Degraded}
		if d.folder != nil {
			f := d.folder.State()
			ds.Folder = &f
		}
		if d.box != nil {
			bx := boxState(d.box)
			ds.Box = &bx
		}
		s.Deps = append(s.Deps, ds)
	}
	for fi := range b.frames {
		fr := &b.frames[fi]
		fs := FrameDepState{NumRegs: len(fr.regw), RetDst: fr.retDst}
		for slot := range fr.regw {
			if w := &fr.regw[slot]; w.instr != nil {
				fs.Regs = append(fs.Regs, RegState{Slot: slot, Instr: w.instr.ID,
					Coords: append([]int64(nil), w.coords...)})
			}
		}
		s.Frames = append(s.Frames, fs)
	}
	s.PendingN = len(b.pendingArgs)
	for slot := range b.pendingArgs {
		if w := &b.pendingArgs[slot]; w.instr != nil {
			s.PendingArgs = append(s.PendingArgs, RegState{Slot: slot, Instr: w.instr.ID,
				Coords: append([]int64(nil), w.coords...)})
		}
	}
	if b.pendingRet.instr != nil {
		s.PendingRet = &RegState{Instr: b.pendingRet.instr.ID,
			Coords: append([]int64(nil), b.pendingRet.coords...)}
	}
	if b.stale != nil {
		s.Stale = staleStates(b.stale)
	}
	return s, nil
}

// RestoreBuilder rebuilds a builder from checkpointed state against the
// re-materialized program.  The restored builder re-charges the budget
// for every live record and edge, so resumed accounting matches the
// checkpointed run's.
func RestoreBuilder(prog *isa.Program, opts Options, s *BuilderState) (*Builder, error) {
	b := NewBuilder(prog, opts)
	b.totalOps, b.memOps, b.fpOps = s.TotalOps, s.MemOps, s.FPOps
	if s.EpochN > 0 {
		b.epochN = s.EpochN
	}
	b.releasedBytes = s.Released
	for _, ss := range s.Stmts {
		f, err := fold.RestoreFolder(ss.Folder)
		if err != nil {
			return nil, err
		}
		f.Obs = opts.Obs
		st := &Stmt{ID: len(b.allStmts), Block: ss.Block, Ctx: ss.Ctx, Depth: ss.Depth, Count: ss.Count, folder: f}
		byBlk := b.stmts[ss.Ctx]
		if byBlk == nil {
			byBlk = map[isa.BlockID]*Stmt{}
			b.stmts[ss.Ctx] = byBlk
		}
		byBlk[ss.Block] = st
		b.allStmts = append(b.allStmts, st)
	}
	for _, is := range s.Instrs {
		if is.Stmt < 0 || is.Stmt >= len(b.allStmts) {
			return nil, fmt.Errorf("ddg: checkpoint instr references unknown stmt %d", is.Stmt)
		}
		if is.Ref.Block < 0 || int(is.Ref.Block) >= len(prog.Blocks) {
			return nil, fmt.Errorf("ddg: checkpoint instr references unknown block %d", is.Ref.Block)
		}
		blk := prog.Block(is.Ref.Block)
		if is.Ref.Index < 0 || int(is.Ref.Index) >= len(blk.Code) {
			return nil, fmt.Errorf("ddg: checkpoint instr index %d out of range in block %q", is.Ref.Index, blk.Name)
		}
		in := &blk.Code[is.Ref.Index]
		i := NewInstr(len(b.allInst), is.Ref, is.Ctx, in, b.allStmts[is.Stmt])
		i.Count = is.Count
		if i.hasValue {
			if is.Value == nil {
				return nil, fmt.Errorf("ddg: checkpoint instr I%d lost its value folder", i.ID)
			}
			f, err := fold.RestoreFolder(*is.Value)
			if err != nil {
				return nil, err
			}
			f.Obs = opts.Obs
			i.valueFolder = f
		}
		if i.hasAccess {
			if is.Access == nil {
				return nil, fmt.Errorf("ddg: checkpoint instr I%d lost its access folder", i.ID)
			}
			f, err := fold.RestoreFolder(*is.Access)
			if err != nil {
				return nil, err
			}
			f.Obs = opts.Obs
			i.accessFolder = f
		}
		byRef := b.instrs[is.Ctx]
		if byRef == nil {
			byRef = map[trace.InstrRef]*Instr{}
			b.instrs[is.Ctx] = byRef
		}
		byRef[is.Ref] = i
		b.allInst = append(b.allInst, i)
	}
	instrAt := func(id int) (*Instr, error) {
		if id < 0 || id >= len(b.allInst) {
			return nil, fmt.Errorf("ddg: checkpoint references unknown instr I%d", id)
		}
		return b.allInst[id], nil
	}
	for _, ds := range s.Deps {
		src, err := instrAt(ds.Src)
		if err != nil {
			return nil, err
		}
		dst, err := instrAt(ds.Dst)
		if err != nil {
			return nil, err
		}
		d := &Dep{Src: src, Dst: dst, Kind: Kind(ds.Kind), Count: ds.Count, Degraded: ds.Degraded}
		if ds.Folder != nil {
			mf, err := fold.RestoreMultiFolder(*ds.Folder)
			if err != nil {
				return nil, err
			}
			mf.Obs = opts.Obs
			d.folder = mf
		}
		if ds.Box != nil {
			d.box = restoreBox(*ds.Box)
		}
		opts.Budget.GrantEdges(1)
		b.deps[depKey{src: src.ID, dst: dst.ID, kind: d.Kind}] = d
		b.allDeps = append(b.allDeps, d)
	}
	restoreRecs := func(dst []writerRec, src []RecState) error {
		for _, rs := range src {
			if rs.Addr < 0 || rs.Addr >= int64(len(dst)) {
				return fmt.Errorf("ddg: checkpoint shadow address %d out of range", rs.Addr)
			}
			i, err := instrAt(rs.Instr)
			if err != nil {
				return err
			}
			grant := rs.Grant
			if grant == 0 {
				grant = recBytes(len(rs.Coords))
			}
			if !opts.Budget.GrantShadow(grant) {
				b.tripShadow()
			}
			dst[rs.Addr] = writerRec{instr: i, coords: append([]int64(nil), rs.Coords...),
				seen: b.epochN, grant: grant}
		}
		return nil
	}
	if err := restoreRecs(b.shadow, s.Shadow); err != nil {
		return nil, err
	}
	if err := restoreRecs(b.lastRead, s.LastRead); err != nil {
		return nil, err
	}
	b.frames = b.frames[:0]
	b.curRegWords = 0
	for _, fs := range s.Frames {
		fr := frame{regw: make([]writerRec, fs.NumRegs), retDst: fs.RetDst}
		for _, rs := range fs.Regs {
			if rs.Slot < 0 || rs.Slot >= fs.NumRegs {
				return nil, fmt.Errorf("ddg: checkpoint register slot %d out of range", rs.Slot)
			}
			i, err := instrAt(rs.Instr)
			if err != nil {
				return nil, err
			}
			fr.regw[rs.Slot] = writerRec{instr: i, coords: append([]int64(nil), rs.Coords...)}
		}
		b.frames = append(b.frames, fr)
		b.curRegWords += fs.NumRegs
	}
	if len(b.frames) == 0 {
		return nil, fmt.Errorf("ddg: checkpoint has no frames")
	}
	b.peakRegWords = s.PeakRegs
	if b.curRegWords > b.peakRegWords {
		b.peakRegWords = b.curRegWords
	}
	b.pendingArgs = make([]writerRec, s.PendingN)
	for _, rs := range s.PendingArgs {
		if rs.Slot < 0 || rs.Slot >= s.PendingN {
			return nil, fmt.Errorf("ddg: checkpoint pending-arg slot %d out of range", rs.Slot)
		}
		i, err := instrAt(rs.Instr)
		if err != nil {
			return nil, err
		}
		b.pendingArgs[rs.Slot] = writerRec{instr: i, coords: append([]int64(nil), rs.Coords...)}
	}
	b.pendingDst = s.PendingDst
	if s.PendingRet != nil {
		i, err := instrAt(s.PendingRet.Instr)
		if err != nil {
			return nil, err
		}
		b.pendingRet = writerRec{instr: i, coords: append([]int64(nil), s.PendingRet.Coords...)}
	}
	for _, rg := range s.Stale {
		if b.stale == nil {
			return nil, fmt.Errorf("ddg: checkpoint has stale summaries but streaming is off")
		}
		dst := &coarseRange{writers: map[*Instr]*coordBox{}, readers: map[*Instr]*coordBox{}}
		for _, ws := range rg.Writers {
			i, err := instrAt(ws.Instr)
			if err != nil {
				return nil, err
			}
			dst.writers[i] = restoreBox(ws.Box)
		}
		for _, rs := range rg.Readers {
			i, err := instrAt(rs.Instr)
			if err != nil {
				return nil, err
			}
			dst.readers[i] = restoreBox(rs.Box)
		}
		b.stale[rg.Key] = dst
	}
	return b, nil
}
