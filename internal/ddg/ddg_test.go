package ddg_test

import (
	"strings"
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/isa"
	"polyprof/internal/poly"
	"polyprof/internal/workloads"
)

func runProfile(t *testing.T, prog *isa.Program) *core.Profile {
	t.Helper()
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// instrsIn returns the folded instructions executed in blocks of the
// named function whose block name contains sub.
func instrsIn(p *core.Profile, fn, sub string) []*ddg.Instr {
	var out []*ddg.Instr
	for _, i := range p.DDG.Instrs {
		b := p.Prog.Block(i.Ref.Block)
		if p.Prog.Func(b.Fn).Name == fn && strings.Contains(b.Name, sub) {
			out = append(out, i)
		}
	}
	return out
}

// TestBackpropTable2 reproduces the paper's Tables 1 and 2 end-to-end:
// profiling the backprop twin must fold the layer-forward kernel's
// dependencies into
//
//	I1 -> I2:  { 0<=cj<=15, 0<=ck<=42 }  (cj,ck) -> (cj,ck)
//	I4 -> I4:  { 0<=cj<=15, 1<=ck<=42 }  (cj,ck) -> (cj,ck-1)
//
// and recognize the k-increment (I5) as a SCEV so its dependence chains
// vanish.
func TestBackpropTable2(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	p := runProfile(t, prog)

	// Locate the inner-loop instructions of the *first* (big) call:
	// count 16*43 = 688 executions.
	const bigCount = 16 * 43
	var i1, i2, i4 *ddg.Instr
	for _, i := range instrsIn(p, "bpnn_layerforward", "Lk.body") {
		if i.Count != bigCount {
			continue
		}
		switch i.Op {
		case isa.Load:
			i1 = i
		case isa.FLoad:
			// I2 loads through the row pointer (its base register is not
			// the l1 argument); distinguish by checking the access
			// pattern later — here, pick the one whose address stride in
			// ck is large for I2 detection via folded access fn.
			if i2 == nil {
				i2 = i
			} else if i.Access.Fn != nil && i2.Access.Fn != nil {
				// I2's address varies by (Hidden+1)=17 per ck; I3's by 1.
				if abs(i.Access.Fn.Rows[0].C[1]) > abs(i2.Access.Fn.Rows[0].C[1]) {
					i2 = i
				}
			}
		case isa.FAdd:
			i4 = i
		}
	}
	if i1 == nil || i2 == nil || i4 == nil {
		t.Fatalf("kernel instructions not found: I1=%v I2=%v I4=%v", i1, i2, i4)
	}

	findDep := func(src, dst *ddg.Instr, kind ddg.Kind) *ddg.Dep {
		for _, d := range p.DDG.Deps {
			if d.Src == src && d.Dst == dst && d.Kind == kind {
				return d
			}
		}
		return nil
	}

	// I1 -> I2 (register flow via the row pointer).
	d12 := findDep(i1, i2, ddg.FlowReg)
	if d12 == nil {
		t.Fatal("missing I1 -> I2 dependence")
	}
	if !d12.Piece().Exact || d12.Piece().Fn == nil {
		t.Fatalf("I1->I2 not folded exactly: %v", d12)
	}
	if !d12.Piece().Fn.Equal(poly.Identity(2)) {
		t.Errorf("I1->I2 map = %v, want identity", d12.Piece().Fn)
	}
	checkRect(t, "I1->I2", d12.Piece().Dom, 0, 15, 0, 42)

	// I4 -> I4 (sum accumulation across ck).
	d44 := findDep(i4, i4, ddg.FlowReg)
	if d44 == nil {
		t.Fatal("missing I4 -> I4 dependence")
	}
	if !d44.Piece().Exact || d44.Piece().Fn == nil {
		t.Fatalf("I4->I4 not folded exactly: %v", d44)
	}
	want := poly.NewMap(2, 2)
	want.Rows[0] = poly.Var(2, 0)
	want.Rows[1] = poly.Var(2, 1).Sub(poly.Const(2, 1))
	if !d44.Piece().Fn.Equal(want) {
		t.Errorf("I4->I4 map = %v, want (cj, ck-1)", d44.Piece().Fn)
	}
	checkRect(t, "I4->I4", d44.Piece().Dom, 0, 15, 1, 42)
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func checkRect(t *testing.T, what string, dom *poly.Poly, lo0, hi0, lo1, hi1 int64) {
	t.Helper()
	for dim, want := range [][2]int64{{lo0, hi0}, {lo1, hi1}} {
		lo, hi, lok, hok := dom.IntBounds(poly.Var(dom.Dim, dim))
		if !lok || !hok || lo != want[0] || hi != want[1] {
			t.Errorf("%s dim %d bounds [%d,%d], want [%d,%d]", what, dim, lo, hi, want[0], want[1])
		}
	}
}

// TestBackpropSCEV checks that loop-counter and address arithmetic are
// recognized as scalar evolutions (I5/I8 in the paper) and that no
// dependence edge touches a SCEV instruction.
func TestBackpropSCEV(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	p := runProfile(t, prog)

	scevs := 0
	for _, i := range instrsIn(p, "bpnn_layerforward", "") {
		if i.IsSCEV {
			scevs++
		}
	}
	if scevs == 0 {
		t.Error("no SCEVs recognized in bpnn_layerforward (expected loop counters and bounds)")
	}
	for _, d := range p.DDG.Deps {
		if d.Src.IsSCEV || d.Dst.IsSCEV {
			t.Fatalf("dependence touches SCEV instruction: %v", d)
		}
	}
}

// TestBackpropAccessFunctions checks folded address functions: I3 loads
// l1[k] (stride 1 in ck), I2 loads conn[k][j] (stride 17 in ck, 1 in
// cj) — the raw material for the paper's stride-based interchange
// feedback.
func TestBackpropAccessFunctions(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	p := runProfile(t, prog)

	const bigCount = 16 * 43
	var strides [][2]int64
	for _, i := range instrsIn(p, "bpnn_layerforward", "Lk.body") {
		if i.Count != bigCount || !i.HasAccess() {
			continue
		}
		if i.Access.Fn == nil {
			t.Errorf("access of %v (%v) not affine", i.Op, i.Loc)
			continue
		}
		e := i.Access.Fn.Rows[0]
		strides = append(strides, [2]int64{e.C[0], e.C[1]})
	}
	if len(strides) != 3 {
		t.Fatalf("got %d folded accesses in the inner body, want 3 (I1, I2, I3)", len(strides))
	}
	var have1, have17 bool
	for _, s := range strides {
		if s[1] == 1 {
			have1 = true // I1 (conn+k) or I3 (l1+k)
		}
		if s[1] == 17 && s[0] == 1 {
			have17 = true // I2: conn_rows + 17*ck + cj (+const)
		}
	}
	if !have1 || !have17 {
		t.Errorf("stride profile wrong: %v", strides)
	}
}

// TestMemoryFlowDependence checks shadow-memory RAW edges across loop
// nests: a producer loop writing A[i] and a consumer loop reading A[i]
// must yield an inter-statement flow dep with the identity map.
func TestMemoryFlowDependence(t *testing.T) {
	pb := isa.NewProgram("producer-consumer")
	a := pb.Global("A", 64)
	b := pb.Global("B", 64)
	m := pb.Func("main", 0)
	n := m.IConst(32)
	aBase := m.IConst(a.Base)
	bBase := m.IConst(b.Base)
	m.Loop("Lw", m.IConst(0), n, 1, func(i isa.Reg) {
		m.StoreIdx(aBase, i, 0, m.Mul(i, i)) // non-SCEV value (i*i)... i*i is Mul of i,i: quadratic
	})
	m.Loop("Lr", m.IConst(0), n, 1, func(i isa.Reg) {
		v := m.LoadIdx(aBase, i, 0)
		m.StoreIdx(bBase, i, 0, v)
	})
	m.Halt()
	pb.SetMain(m)
	prog := pb.MustBuild()

	p := runProfile(t, prog)
	var found *ddg.Dep
	for _, d := range p.DDG.Deps {
		if d.Kind == ddg.FlowMem && d.Src.Op == isa.Store && d.Dst.Op == isa.Load {
			found = d
		}
	}
	if found == nil {
		t.Fatal("missing cross-loop memory flow dependence")
	}
	if !found.Piece().Exact || found.Piece().Fn == nil {
		t.Fatalf("cross-loop dep not folded: %v", found)
	}
	if !found.Piece().Fn.Equal(poly.Identity(1)) {
		t.Errorf("dep map = %v, want identity", found.Piece().Fn)
	}
	if found.Count != 32 {
		t.Errorf("dep count = %d, want 32", found.Count)
	}
}

// TestOutputAndAntiDeps checks WAW and WAR tracking on an in-place
// update loop.
func TestOutputAndAntiDeps(t *testing.T) {
	pb := isa.NewProgram("waw-war")
	a := pb.Global("A", 8)
	m := pb.Func("main", 0)
	aBase := m.IConst(a.Base)
	zero := m.IConst(0)
	m.Loop("L", m.IConst(0), m.IConst(16), 1, func(i isa.Reg) {
		v := m.LoadIdx(aBase, zero, 0)          // read A[0]
		m.StoreIdx(aBase, zero, 0, m.Add(v, v)) // write A[0]
	})
	m.Halt()
	pb.SetMain(m)
	p := runProfile(t, pb.MustBuild())

	var haveOut, haveAnti bool
	for _, d := range p.DDG.Deps {
		switch d.Kind {
		case ddg.Output:
			haveOut = true
		case ddg.Anti:
			haveAnti = true
		}
	}
	if !haveOut {
		t.Error("missing output (WAW) dependence on repeated A[0] store")
	}
	if !haveAnti {
		t.Error("missing anti (WAR) dependence on A[0]")
	}
}

// TestArgAndReturnLinkage checks register dependencies flow through
// calls (arguments) and returns (return values).
func TestArgAndReturnLinkage(t *testing.T) {
	pb := isa.NewProgram("linkage")
	out := pb.Global("out", 8)
	double := pb.Func("double", 1)
	double.Ret(double.Add(double.Arg(0), double.Arg(0)))
	m := pb.Func("main", 0)
	base := m.IConst(out.Base)
	m.Loop("L", m.IConst(0), m.IConst(4), 1, func(i isa.Reg) {
		sq := m.Mul(i, i) // non-affine producer, survives SCEV removal
		d := m.Call(double.ID(), sq)
		m.StoreIdx(base, i, 0, d)
	})
	m.Halt()
	pb.SetMain(m)
	p := runProfile(t, pb.MustBuild())

	var argDep, retDep bool
	for _, d := range p.DDG.Deps {
		if d.Kind != ddg.FlowReg {
			continue
		}
		srcFn := p.Prog.Func(p.Prog.Block(d.Src.Ref.Block).Fn).Name
		dstFn := p.Prog.Func(p.Prog.Block(d.Dst.Ref.Block).Fn).Name
		if srcFn == "main" && dstFn == "double" {
			argDep = true
		}
		if srcFn == "double" && dstFn == "main" {
			retDep = true
		}
	}
	if !argDep {
		t.Error("missing argument dependence main -> double")
	}
	if !retDep {
		t.Error("missing return-value dependence double -> main")
	}
}

// TestStatementDomains checks folded statement domains for the
// triangular pattern.
func TestStatementDomains(t *testing.T) {
	pb := isa.NewProgram("triangle")
	a := pb.Global("A", 128)
	m := pb.Func("main", 0)
	base := m.IConst(a.Base)
	n := m.IConst(8)
	m.Loop("Li", m.IConst(0), n, 1, func(i isa.Reg) {
		end := m.Add(i, m.IConst(1))
		m.Loop("Lj", m.IConst(0), end, 1, func(j isa.Reg) {
			m.StoreIdx(base, m.Add(m.Mul(i, m.IConst(8)), j), 0, i)
		})
	})
	m.Halt()
	pb.SetMain(m)
	p := runProfile(t, pb.MustBuild())

	var dom *poly.Poly
	for _, s := range p.DDG.Stmts {
		if strings.Contains(p.Prog.Block(s.Block).Name, "Lj.body") {
			if !s.Domain.Exact {
				t.Fatalf("triangular domain not exact: %v", s.Domain)
			}
			dom = s.Domain.Dom
		}
	}
	if dom == nil {
		t.Fatal("inner statement not found")
	}
	if n, exact := dom.PointCount(1000); n != 36 || !exact {
		t.Errorf("triangle has %d points (exact=%v), want 36", n, exact)
	}
	if dom.Contains([]int64{2, 3}) {
		t.Error("domain must exclude j > i")
	}
}
