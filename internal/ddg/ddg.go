// Package ddg builds the dynamic dependence graph (paper Sec. 4): one
// vertex per dynamic instruction, one edge per data dependence, with
// every vertex tagged by its dynamic interprocedural iteration vector.
// Vertices and edges are never materialized individually — each
// (statement, context) stream and each (producer, consumer) dependence
// stream is folded on the fly (Sec. 5), so memory stays proportional to
// the folded representation, not to the trace.
//
// Data dependencies are tracked through two mechanisms, as in the
// paper's "Instrumentation II":
//
//   - a shadow memory records the last dynamic instruction that wrote
//     each word (flow deps), the previous writer (output deps) and the
//     last reader (anti deps, last-reader approximation);
//   - per-frame register tables record the producing instruction of
//     every live register value, with call arguments and return values
//     linked across frames.
package ddg

import (
	"fmt"
	"sort"

	"polyprof/internal/budget"
	"polyprof/internal/fold"
	"polyprof/internal/isa"
	"polyprof/internal/obs"
	"polyprof/internal/trace"
)

// Kind classifies dependence edges.
type Kind uint8

// Dependence kinds.
const (
	FlowMem Kind = iota // read after write through memory
	FlowReg             // read after write through a register
	Output              // write after write through memory
	Anti                // write after read through memory
)

func (k Kind) String() string {
	switch k {
	case FlowMem:
		return "flow"
	case FlowReg:
		return "reg"
	case Output:
		return "output"
	case Anti:
		return "anti"
	}
	return "dep(?)"
}

// Stmt is a (basic block, context) pair: the folding granularity for
// iteration domains.  All instructions of the block share its domain.
type Stmt struct {
	ID    int
	Block isa.BlockID
	Ctx   string
	Depth int
	Count uint64 // dynamic executions of the block under this context

	folder *fold.Folder
	Domain fold.Piece // valid after Finish
}

// Instr is a static instruction in a specific context; the unit for
// value (SCEV) and access (stride) folding and the endpoint of
// dependence edges.
type Instr struct {
	ID    int
	Ref   trace.InstrRef
	Ctx   string
	Depth int
	Op    isa.Opcode
	Loc   isa.SrcLoc
	Stmt  *Stmt
	Count uint64

	valueFolder  *fold.Folder // int-producing instructions
	accessFolder *fold.Folder // memory instructions (label = address)
	hasValue     bool
	hasAccess    bool

	Value  fold.Piece // valid after Finish when valueFolder != nil
	Access fold.Piece // valid after Finish when accessFolder != nil

	// IsSCEV marks instructions whose produced values folded to an
	// affine function of the iteration vector (scalar evolutions); their
	// dependence chains are removed from the DDG per Sec. 5.
	IsSCEV bool
}

// HasValue reports whether the instruction produced foldable integer
// values.
func (i *Instr) HasValue() bool { return i.hasValue }

// HasAccess reports whether the instruction accessed memory.
func (i *Instr) HasAccess() bool { return i.hasAccess }

// NewInstr constructs an instruction vertex outside the sequential
// builder, applying the same value/access classification instrFor
// applies — but without attaching folders: an alternative engine (the
// sharded one in internal/parddg) owns its own folders and assigns
// Value/Access/Pieces at merge time.  Keeping the classification here
// is what keeps HasValue/HasAccess — and therefore the fold-stream
// census and SCEV candidacy — identical between engines.
func NewInstr(id int, ref trace.InstrRef, ctx string, in *isa.Instr, stmt *Stmt) *Instr {
	i := &Instr{
		ID:    id,
		Ref:   ref,
		Ctx:   ctx,
		Depth: stmt.Depth,
		Op:    in.Op,
		Loc:   in.Loc,
		Stmt:  stmt,
	}
	if in.Op.ProducesInt() && in.Dst != isa.NoReg {
		i.hasValue = true
	}
	if in.Op.IsMem() {
		i.hasAccess = true
	}
	return i
}

// Dep is a folded dependence-edge bundle between two instruction
// contexts.
type Dep struct {
	Src, Dst *Instr
	Kind     Kind
	Count    uint64

	// Degraded marks bundles holding an over-approximated coarse piece
	// produced under budget pressure (see degrade.go); their final
	// piece has no affine function, which the scheduler treats as a
	// star dependence.
	Degraded bool

	folder *fold.MultiFolder
	box    *coordBox // coarse consumer box, merged into Pieces at Finish
	// Pieces folds the dependence as a union: each piece's domain is a
	// set of consumer coordinates and its Fn maps them to the producer
	// coordinates.  Piecewise-affine dependencies (in-place stencils,
	// boundary clamps) need more than one piece.
	Pieces []fold.Piece
}

func (d *Dep) String() string {
	return fmt.Sprintf("%v: I%d -> I%d (%d pts, %d pieces)", d.Kind, d.Src.ID, d.Dst.ID, d.Count, len(d.Pieces))
}

// Piece returns the first (dominant) piece, for single-piece consumers.
func (d *Dep) Piece() fold.Piece {
	if len(d.Pieces) == 0 {
		return fold.Piece{}
	}
	return d.Pieces[0]
}

// Options tunes the builder.
type Options struct {
	// TrackAnti enables write-after-read edges (last-reader
	// approximation).
	TrackAnti bool
	// TrackOutput enables write-after-write edges.
	TrackOutput bool
	// TrackReg enables register flow edges.
	TrackReg bool
	// NoStrideDetection disables the lattice folding extension
	// (ablation: the paper's published folder, which over-approximates
	// strided domains).
	NoStrideDetection bool
	// Obs is the span-context the builder publishes its metrics into;
	// the zero Scope targets the process-wide default registry.
	Obs obs.Scope
	// Budget, when set, bounds shadow-memory bytes and dependence
	// edges.  Exhaustion degrades the graph to coarse summaries (see
	// degrade.go) instead of failing the run.
	Budget *budget.Budget
	// Stream enables epoch fold-and-release (epoch.go): shadow records
	// untouched for a full epoch fold into conservative stale summaries
	// and return their bytes to the budget, so a trace far larger than
	// MaxShadowBytes profiles without tripping degradation.  Set by the
	// streaming driver in core when both an epoch size and a shadow
	// budget are configured.
	Stream bool
}

// DefaultOptions tracks everything with the lattice extension enabled.
func DefaultOptions() Options {
	return Options{TrackAnti: true, TrackOutput: true, TrackReg: true}
}

type writerRec struct {
	instr  *Instr
	coords []int64
	// seen is the epoch of the last touch and grant the budget bytes
	// charged for this record; both drive the streaming fold-and-release
	// cycle (epoch.go) and are dead weight otherwise.
	seen  uint64
	grant uint64
}

func (w *writerRec) set(instr *Instr, coords []int64) {
	w.instr = instr
	w.coords = append(w.coords[:0], coords...)
}

type frame struct {
	regw   []writerRec
	retDst isa.Reg // destination register in the caller
}

type depKey struct {
	src, dst int
	kind     Kind
}

// Graph is the folded dynamic dependence graph of one execution.
type Graph struct {
	Stmts  []*Stmt
	Instrs []*Instr
	Deps   []*Dep

	// Degraded is non-nil when a resource budget tripped during the
	// run and parts of the graph were coarsened (see degrade.go).
	Degraded *Degradation

	// TotalOps/MemOps/FPOps are the dynamic operation counters observed
	// by this builder (equal to the VM's when attached to a full run).
	TotalOps uint64
	MemOps   uint64
	FPOps    uint64
}

// Builder implements core.InstrSink, constructing a Graph during the
// pass-2 run.
type Builder struct {
	prog *isa.Program
	opts Options

	stmts    map[string]map[isa.BlockID]*Stmt // ctx -> block -> stmt
	instrs   map[string]map[trace.InstrRef]*Instr
	deps     map[depKey]*Dep
	allStmts []*Stmt
	allInst  []*Instr
	allDeps  []*Dep

	// Per-context caches, valid while ctx == cacheCtx.
	cacheCtx   string
	stmtCache  map[isa.BlockID]*Stmt
	instrCache map[trace.InstrRef]*Instr

	shadow   []writerRec // last writer per word
	lastRead []writerRec // last reader per word
	frames   []frame

	pendingArgs []writerRec
	pendingDst  isa.Reg
	pendingRet  writerRec

	usesBuf []isa.Reg
	lblBuf  []int64

	totalOps, memOps, fpOps uint64

	// curRegWords/peakRegWords track the live register-table size
	// (writer records across all mirrored frames); maintained with plain
	// integer arithmetic on call/return so the per-instruction path is
	// untouched, published to the metrics registry in Finish.
	curRegWords, peakRegWords int

	// coarse is non-nil once the shadow budget tripped; from then on
	// the memory hot path routes through coarseEvent (degrade.go).
	coarse *coarseState
	// faultErr latches an error injected on a path that cannot return
	// one; FinishChecked surfaces it.
	faultErr error

	// Streaming fold-and-release state (epoch.go): stale is non-nil
	// exactly when opts.Stream, epochN counts epoch boundaries from 1,
	// releasedBytes totals the budget bytes returned so far.
	stale         map[int64]*coarseRange
	epochN        uint64
	releasedBytes uint64
	// pinTripped carries the live budget's tripped list into a
	// provisional clone, whose own Budget is nil (see Clone).
	pinTripped []string
}

// NewBuilder creates a DDG builder for one execution of prog.
func NewBuilder(prog *isa.Program, opts Options) *Builder {
	b := &Builder{
		prog:     prog,
		opts:     opts,
		stmts:    map[string]map[isa.BlockID]*Stmt{},
		instrs:   map[string]map[trace.InstrRef]*Instr{},
		deps:     map[depKey]*Dep{},
		shadow:   make([]writerRec, prog.MemWords),
		lastRead: make([]writerRec, prog.MemWords),
	}
	main := prog.Func(prog.Main)
	b.frames = append(b.frames, frame{regw: make([]writerRec, main.NumRegs), retDst: isa.NoReg})
	b.curRegWords = main.NumRegs
	b.peakRegWords = b.curRegWords
	// Charge the fixed record tables up front; a budget too small for
	// them degrades the whole address space from the first event.
	if !opts.Budget.GrantShadow(baseShadowBytes(prog.MemWords)) {
		b.tripShadow()
	}
	if opts.Stream {
		b.stale = map[int64]*coarseRange{}
		b.epochN = 1
	}
	return b
}

func (b *Builder) curFrame() *frame { return &b.frames[len(b.frames)-1] }

// newFolder creates a stream folder honoring the builder options.
func (b *Builder) newFolder(dim, labelW int) *fold.Folder {
	f := fold.NewFolder(dim, labelW)
	f.Obs = b.opts.Obs
	if b.opts.NoStrideDetection {
		f.DetectStrides = false
	}
	return f
}

// OnControl implements core.InstrSink: it mirrors the call stack so
// register dependencies flow through calls and returns.
func (b *Builder) OnControl(ev trace.ControlEvent) {
	switch ev.Kind {
	case trace.Call:
		callee := b.prog.Func(ev.Callee)
		f := frame{regw: make([]writerRec, callee.NumRegs), retDst: b.pendingDst}
		for i, w := range b.pendingArgs {
			if i < len(f.regw) {
				f.regw[i] = writerRec{instr: w.instr, coords: append([]int64(nil), w.coords...)}
			}
		}
		b.frames = append(b.frames, f)
		b.curRegWords += len(f.regw)
		if b.curRegWords > b.peakRegWords {
			b.peakRegWords = b.curRegWords
		}
	case trace.Return:
		top := b.frames[len(b.frames)-1]
		b.frames = b.frames[:len(b.frames)-1]
		b.curRegWords -= len(top.regw)
		if len(b.frames) > 0 && top.retDst != isa.NoReg && b.pendingRet.instr != nil {
			b.curFrame().regw[top.retDst].set(b.pendingRet.instr, b.pendingRet.coords)
		}
		b.pendingRet = writerRec{}
	}
}

func (b *Builder) stmtFor(ctx string, blk isa.BlockID, depth int) *Stmt {
	if ctx != b.cacheCtx {
		b.cacheCtx = ctx
		b.stmtCache = map[isa.BlockID]*Stmt{}
		b.instrCache = map[trace.InstrRef]*Instr{}
	}
	if s, ok := b.stmtCache[blk]; ok {
		return s
	}
	byBlk := b.stmts[ctx]
	if byBlk == nil {
		byBlk = map[isa.BlockID]*Stmt{}
		b.stmts[ctx] = byBlk
	}
	s, ok := byBlk[blk]
	if !ok {
		s = &Stmt{
			ID:     len(b.allStmts),
			Block:  blk,
			Ctx:    ctx,
			Depth:  depth,
			folder: b.newFolder(depth, 0),
		}
		byBlk[blk] = s
		b.allStmts = append(b.allStmts, s)
	}
	b.stmtCache[blk] = s
	return s
}

func (b *Builder) instrFor(ctx string, ref trace.InstrRef, in *isa.Instr, stmt *Stmt) *Instr {
	if i, ok := b.instrCache[ref]; ok {
		return i
	}
	byRef := b.instrs[ctx]
	if byRef == nil {
		byRef = map[trace.InstrRef]*Instr{}
		b.instrs[ctx] = byRef
	}
	i, ok := byRef[ref]
	if !ok {
		i = &Instr{
			ID:    len(b.allInst),
			Ref:   ref,
			Ctx:   ctx,
			Depth: stmt.Depth,
			Op:    in.Op,
			Loc:   in.Loc,
			Stmt:  stmt,
		}
		if in.Op.ProducesInt() && in.Dst != isa.NoReg {
			i.valueFolder = b.newFolder(stmt.Depth, 1)
			i.hasValue = true
		}
		if in.Op.IsMem() {
			i.accessFolder = b.newFolder(stmt.Depth, 1)
			i.hasAccess = true
		}
		byRef[ref] = i
		b.allInst = append(b.allInst, i)
	}
	b.instrCache[ref] = i
	return i
}

func (b *Builder) addDep(src *Instr, srcCoords []int64, dst *Instr, dstCoords []int64, kind Kind) {
	key := depKey{src: src.ID, dst: dst.ID, kind: kind}
	d, ok := b.deps[key]
	if !ok {
		d = &Dep{Src: src, Dst: dst, Kind: kind}
		if b.opts.Budget.GrantEdges(1) {
			mf := fold.NewMultiFolder(dst.Depth, src.Depth, fold.DefaultMaxPieces)
			mf.Obs = b.opts.Obs
			d.folder = mf
		} else {
			// Edge budget exhausted: keep the bundle (dropping it would
			// be unsound) but only as a consumer bounding box.
			d.Degraded = true
			d.box = &coordBox{}
		}
		b.deps[key] = d
		b.allDeps = append(b.allDeps, d)
	}
	d.Count++
	if d.folder != nil {
		d.folder.Add(dstCoords, srcCoords)
	} else {
		d.box.extend(dstCoords)
	}
}

// OnInstr implements core.InstrSink.
func (b *Builder) OnInstr(ctxKey string, coords []int64, ev trace.InstrEvent, in *isa.Instr) {
	b.totalOps++
	if in.Op.IsFP() {
		b.fpOps++
	}
	stmt := b.stmtFor(ctxKey, ev.Ref.Block, len(coords))
	if ev.Ref.Index == 0 {
		stmt.Count++
		stmt.folder.Add(coords, nil)
	}
	instr := b.instrFor(ctxKey, ev.Ref, in, stmt)
	instr.Count++

	fr := b.curFrame()

	// Register flow dependencies: one edge per operand whose producer is
	// known.
	if b.opts.TrackReg {
		b.usesBuf = in.Uses(b.usesBuf)
		for _, r := range b.usesBuf {
			if int(r) < len(fr.regw) {
				if w := &fr.regw[r]; w.instr != nil {
					b.addDep(w.instr, w.coords, instr, coords, FlowReg)
				}
			}
		}
	}

	// Memory dependencies via shadow memory.  Once the shadow budget
	// trips (b.coarse non-nil) events route through coarseEvent; until
	// then the only extra cost over unbudgeted tracking is a grant call
	// on each address's first touch.
	if ev.Addr >= 0 {
		b.memOps++
		b.lblBuf = append(b.lblBuf[:0], ev.Addr)
		instr.accessFolder.Add(coords, b.lblBuf)
		if b.coarse != nil {
			b.coarseEvent(instr, coords, ev.Addr, in.Op.IsMemWrite())
		} else if in.Op.IsMemWrite() {
			w := &b.shadow[ev.Addr]
			wasNew := w.instr == nil
			if wasNew && !b.grantRec(len(coords)) {
				b.coarseEvent(instr, coords, ev.Addr, true)
			} else {
				if !wasNew && b.opts.TrackOutput {
					b.addDep(w.instr, w.coords, instr, coords, Output)
				}
				r := &b.lastRead[ev.Addr]
				haveReader := r.instr != nil
				if haveReader && b.opts.TrackAnti {
					b.addDep(r.instr, r.coords, instr, coords, Anti)
				}
				w.set(instr, coords)
				if wasNew {
					w.grant = recBytes(len(coords))
				}
				if b.stale != nil {
					w.seen = b.epochN
					b.staleDeps(instr, coords, ev.Addr, wasNew, !haveReader, true)
				}
			}
		} else {
			r := &b.lastRead[ev.Addr]
			wasNew := r.instr == nil
			if wasNew && !b.grantRec(len(coords)) {
				b.coarseEvent(instr, coords, ev.Addr, false)
			} else {
				w := &b.shadow[ev.Addr]
				haveWriter := w.instr != nil
				if haveWriter {
					b.addDep(w.instr, w.coords, instr, coords, FlowMem)
				}
				r.set(instr, coords)
				if wasNew {
					r.grant = recBytes(len(coords))
				}
				if b.stale != nil {
					r.seen = b.epochN
					b.staleDeps(instr, coords, ev.Addr, !haveWriter, false, false)
				}
			}
		}
	}

	// Record produced values (for SCEV recognition) and the register
	// writer table.
	if in.Op.WritesDst() && in.Dst != isa.NoReg && in.Op != isa.Call {
		if instr.valueFolder != nil {
			b.lblBuf = append(b.lblBuf[:0], ev.Value)
			instr.valueFolder.Add(coords, b.lblBuf)
		}
		if int(in.Dst) < len(fr.regw) {
			fr.regw[in.Dst].set(instr, coords)
		}
	}

	// Call/return linkage for the frame mirror.
	switch in.Op {
	case isa.Call:
		b.pendingArgs = b.pendingArgs[:0]
		for _, a := range in.Args {
			if int(a) < len(fr.regw) {
				b.pendingArgs = append(b.pendingArgs, fr.regw[a])
			} else {
				b.pendingArgs = append(b.pendingArgs, writerRec{})
			}
		}
		b.pendingDst = in.Dst
	case isa.Ret:
		if in.A != isa.NoReg && int(in.A) < len(fr.regw) {
			b.pendingRet = fr.regw[in.A]
		} else {
			b.pendingRet = writerRec{}
		}
	}
}

// Finish folds every stream and runs SCEV elimination, returning the
// folded graph.  It panics on an injected fault or hard-budget abort;
// budget-governed callers use FinishChecked.
func (b *Builder) Finish() *Graph {
	g, err := b.FinishChecked()
	if err != nil {
		panic(err)
	}
	return g
}

// FinishChecked is Finish with error reporting: it surfaces injected
// faults and polls the hard budget (deadline, cancellation) between
// folding batches, so a degenerate graph cannot stall the stage past
// its deadline.
func (b *Builder) FinishChecked() (*Graph, error) {
	if b.faultErr != nil {
		return nil, b.faultErr
	}
	bud := b.opts.Budget
	checkEvery := 0
	check := func() error {
		checkEvery++
		if checkEvery&4095 == 0 {
			return bud.Check("fold")
		}
		return nil
	}
	// Pair coarse ranges first so degraded bundles fold below with
	// everything else.
	b.finishCoarse()
	g := &Graph{
		Stmts:    b.allStmts,
		Instrs:   b.allInst,
		TotalOps: b.totalOps,
		MemOps:   b.memOps,
		FPOps:    b.fpOps,
	}
	for _, s := range g.Stmts {
		s.Domain = s.folder.Finish()
		s.folder = nil
		if err := check(); err != nil {
			return nil, err
		}
	}
	for _, i := range g.Instrs {
		if i.valueFolder != nil {
			i.Value = i.valueFolder.Finish()
			i.valueFolder = nil
		}
		if i.accessFolder != nil {
			i.Access = i.accessFolder.Finish()
			i.accessFolder = nil
		}
		// SCEV recognition: pure integer ALU whose values are an affine
		// function of the iteration vector.  Assignment (not a latch) so
		// finishing restored or cloned state recomputes the flag.
		i.IsSCEV = i.Op.IsIntALU() && i.Value.Fn != nil
		if err := check(); err != nil {
			return nil, err
		}
	}
	// Fold dependencies, dropping chains into SCEV instructions.
	for _, d := range b.allDeps {
		if d.Src.IsSCEV || d.Dst.IsSCEV {
			continue
		}
		if d.folder != nil {
			d.Pieces = d.folder.Finish()
			d.folder = nil
		}
		if d.box != nil {
			d.Pieces = append(d.Pieces, d.box.piece())
			if d.Count == 0 {
				d.Count = d.box.n
			}
			d.box = nil
		}
		g.Deps = append(g.Deps, d)
		if err := check(); err != nil {
			return nil, err
		}
	}
	sort.Slice(g.Deps, func(i, j int) bool {
		a, c := g.Deps[i], g.Deps[j]
		if a.Src.ID != c.Src.ID {
			return a.Src.ID < c.Src.ID
		}
		if a.Dst.ID != c.Dst.ID {
			return a.Dst.ID < c.Dst.ID
		}
		return a.Kind < c.Kind
	})
	b.buildDegradation(g)
	b.publishMetrics(g)
	return g, nil
}

// publishMetrics records the builder's structural statistics (shadow
// memory footprint, register-table peak, folded vs. emitted dependence
// edges) in the builder's scoped metrics registry.
func (b *Builder) publishMetrics(g *Graph) {
	sc := b.opts.Obs
	if !sc.Enabled() {
		return
	}
	// Two writer records per program word: last writer + last reader.
	sc.MaxGauge("ddg.shadow.words", int64(len(b.shadow)+len(b.lastRead)))
	sc.MaxGauge("ddg.regtable.peak_words", int64(b.peakRegWords))
	sc.Add("ddg.stmts", uint64(len(g.Stmts)))
	sc.Add("ddg.instrs", uint64(len(g.Instrs)))
	sc.Add("ddg.deps.folded", uint64(len(b.allDeps)))
	sc.Add("ddg.deps.emitted", uint64(len(g.Deps)))
	sc.Add("ddg.deps.scev_elided", uint64(len(b.allDeps)-len(g.Deps)))
	sc.Add("ddg.events.instr", b.totalOps)
	sc.Add("ddg.events.mem", b.memOps)
	var depPoints uint64
	for _, d := range g.Deps {
		depPoints += d.Count
		sc.Observe("ddg.dep.points", d.Count)
	}
	sc.Add("ddg.dep.points.total", depPoints)
	if b.stale != nil {
		sc.Add("ddg.stream.epochs", b.epochN-1)
		sc.Add("ddg.stream.released_bytes", b.releasedBytes)
		sc.Add("ddg.stream.stale_ranges", uint64(len(b.stale)))
	}
	if deg := g.Degraded; deg != nil {
		sc.Add("ddg.degraded.runs", 1)
		sc.Add("ddg.degraded.coarse_deps", uint64(deg.CoarseDeps))
		sc.Add("ddg.degraded.coarse_events", deg.CoarseEvents)
		sc.Add("ddg.degraded.regions", uint64(len(deg.Regions)))
	}
}
