package ddg_test

import (
	"testing"

	"polyprof/internal/core"
	"polyprof/internal/workloads"
)

// TestFoldedDepDomainsInsideStatementDomains is a whole-pipeline
// validity property: for every exactly folded dependence, the
// dependence's consumer domain must be contained in the consumer
// statement's folded iteration domain, and applying the dependence map
// to any consumer point must land inside the producer statement's
// domain.  This cross-checks folding, shadow tracking and IIV
// construction against each other on several structurally different
// workloads.
func TestFoldedDepDomainsInsideStatementDomains(t *testing.T) {
	for _, name := range []string{"example1", "example2", "backprop", "nw", "pathfinder"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			prog := workloads.ByName(name).Build()
			p, err := core.Run(prog, core.DefaultRunOptions())
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for _, d := range p.DDG.Deps {
				consumer := d.Dst.Stmt
				producer := d.Src.Stmt
				if !consumer.Domain.Exact || !producer.Domain.Exact {
					continue
				}
				for _, piece := range d.Pieces {
					if !piece.Exact || piece.Dom == nil {
						continue
					}
					checked++
					if !piece.Dom.IsSubsetOf(consumer.Domain.Dom) {
						t.Errorf("dep %v: consumer domain %v escapes statement domain %v",
							d, piece.Dom, consumer.Domain.Dom)
					}
					if piece.Fn == nil {
						continue
					}
					// Sample the dependence map: every folded point's
					// producer coordinates must satisfy the producer's
					// domain.
					samples := 0
					err := piece.Dom.Enumerate(func(pt []int64) bool {
						src := piece.Fn.Apply(pt, nil)
						if !producer.Domain.Dom.Contains(src) {
							t.Errorf("dep %v: producer point %v (from consumer %v) outside producer domain %v",
								d, src, pt, producer.Domain.Dom)
							return false
						}
						samples++
						return samples < 200
					})
					if err != nil {
						t.Errorf("dep %v: enumeration failed: %v", d, err)
					}
				}
			}
			if checked == 0 {
				t.Fatalf("%s: no exact dependencies checked — pipeline degenerated", name)
			}
		})
	}
}

// TestStatementCountsMatchDomains: for exactly folded statements, the
// folded polyhedron contains exactly Count points (no holes, no
// over-coverage) — the folding exactness invariant.
func TestStatementCountsMatchDomains(t *testing.T) {
	prog := workloads.Backprop(workloads.DefaultBackpropParams())
	p, err := core.Run(prog, core.DefaultRunOptions())
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, s := range p.DDG.Stmts {
		if !s.Domain.Exact || s.Count > 4096 {
			continue
		}
		n, exact := s.Domain.Dom.PointCount(int64(s.Count) + 10)
		if !exact {
			continue
		}
		checked++
		if uint64(n) != s.Count {
			t.Errorf("stmt %s@%s: domain has %d points but the block executed %d times",
				prog.Block(s.Block).Name, s.Ctx, n, s.Count)
		}
	}
	if checked < 10 {
		t.Fatalf("only %d statements checked; expected many exact domains", checked)
	}
}
