package ddg_test

import (
	"context"
	"fmt"
	"slices"
	"testing"

	"polyprof/internal/budget"
	"polyprof/internal/core"
	"polyprof/internal/ddg"
	"polyprof/internal/sched"
	"polyprof/internal/workloads"
)

// depKeys returns one stable identity string per dependence bundle:
// source and destination instruction (context + code reference) plus
// the dependence kind.
func depKeys(g *ddg.Graph) map[string]bool {
	keys := map[string]bool{}
	for _, d := range g.Deps {
		keys[fmt.Sprintf("%s|%v|%d -> %s|%v|%d : %v",
			d.Src.Ctx, d.Src.Ref.Block, d.Src.Ref.Index,
			d.Dst.Ctx, d.Dst.Ref.Block, d.Dst.Ref.Index, d.Kind)] = true
	}
	return keys
}

func runWithLimits(t *testing.T, name string, limits budget.Limits) *core.Profile {
	t.Helper()
	spec := workloads.ByName(name)
	if spec == nil {
		t.Fatalf("unknown workload %q", name)
	}
	opts := core.DefaultRunOptions()
	opts.Budget = budget.New(context.Background(), limits)
	p, err := core.Run(spec.Build(), opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestShadowDegradationSuperset is the tentpole soundness property:
// exhausting the shadow-memory budget coarsens dependence tracking but
// may only ADD dependence bundles relative to the exact run — every
// exact dependence must survive, as itself or inside a coarse bundle.
func TestShadowDegradationSuperset(t *testing.T) {
	clean := runWithLimits(t, "nn", budget.Limits{})
	if clean.DDG.Degraded != nil {
		t.Fatal("unlimited run must not degrade")
	}

	degraded := runWithLimits(t, "nn", budget.Limits{MaxShadowBytes: 4096})
	d := degraded.DDG.Degraded
	if d == nil {
		t.Fatal("4 KiB shadow budget did not degrade the run")
	}
	if !slices.Contains(d.Budgets, budget.ResourceShadowBytes) {
		t.Fatalf("degradation budgets = %v, want %s", d.Budgets, budget.ResourceShadowBytes)
	}
	if d.CoarseEvents == 0 {
		t.Error("degraded run folded no coarse events")
	}
	if len(d.Regions) == 0 {
		t.Error("degraded run reports no coarsened regions")
	}

	cleanKeys, degKeys := depKeys(clean.DDG), depKeys(degraded.DDG)
	missing := 0
	for k := range cleanKeys {
		if !degKeys[k] {
			missing++
			if missing <= 5 {
				t.Errorf("dependence lost under degradation: %s", k)
			}
		}
	}
	if missing > 0 {
		t.Fatalf("%d of %d exact dependences missing from the degraded run", missing, len(cleanKeys))
	}
}

// TestDegradedDepsAreStar: every coarse bundle must carry a piece with
// no affine map, which the scheduler's analyze step turns into a Star
// (all-directions) dependence — the conservative reading that keeps
// degraded feedback sound.
func TestDegradedDepsAreStar(t *testing.T) {
	p := runWithLimits(t, "nn", budget.Limits{MaxShadowBytes: 4096})
	if p.DDG.Degraded == nil {
		t.Fatal("run did not degrade")
	}
	nDeg := 0
	for _, d := range p.DDG.Deps {
		if !d.Degraded {
			continue
		}
		nDeg++
		coarse := false
		for _, piece := range d.Pieces {
			if piece.Fn == nil && !piece.Exact {
				coarse = true
			}
		}
		if !coarse {
			t.Errorf("degraded dep %v has no coarse piece", d)
		}
	}
	if nDeg == 0 {
		t.Fatal("no dependence bundle marked degraded")
	}
	if p.DDG.Degraded.CoarseDeps != nDeg {
		t.Errorf("Degradation.CoarseDeps = %d, want %d", p.DDG.Degraded.CoarseDeps, nDeg)
	}

	m := sched.Build(p)
	star := 0
	for _, sd := range m.Deps {
		if sd.D.Degraded {
			if !sd.Star && sd.Common > 0 {
				t.Errorf("degraded dep %v scheduled without Star", sd.D)
			}
			star++
		}
	}
	if star == 0 {
		t.Fatal("scheduler saw no degraded dependences")
	}
}

// TestEdgeBudgetDegrades: exhausting the DDG-edge budget keeps every
// bundle but drops exact folding past the limit.
func TestEdgeBudgetDegrades(t *testing.T) {
	clean := runWithLimits(t, "nn", budget.Limits{})
	degraded := runWithLimits(t, "nn", budget.Limits{MaxDDGEdges: 3})
	d := degraded.DDG.Degraded
	if d == nil {
		t.Fatal("3-edge budget did not degrade the run")
	}
	if !slices.Contains(d.Budgets, budget.ResourceDDGEdges) {
		t.Fatalf("degradation budgets = %v, want %s", d.Budgets, budget.ResourceDDGEdges)
	}
	// Edge exhaustion never drops bundles, so the key sets are equal.
	cleanKeys, degKeys := depKeys(clean.DDG), depKeys(degraded.DDG)
	if len(cleanKeys) != len(degKeys) {
		t.Fatalf("edge-budget run has %d bundles, clean run %d", len(degKeys), len(cleanKeys))
	}
	for k := range cleanKeys {
		if !degKeys[k] {
			t.Errorf("bundle lost under edge budget: %s", k)
		}
	}
}

// TestDegradationDeterministic: two identically budgeted runs produce
// the same degradation summary (coarse folding is order-stable).
func TestDegradationDeterministic(t *testing.T) {
	a := runWithLimits(t, "nn", budget.Limits{MaxShadowBytes: 4096}).DDG.Degraded
	b := runWithLimits(t, "nn", budget.Limits{MaxShadowBytes: 4096}).DDG.Degraded
	if a == nil || b == nil {
		t.Fatal("runs did not degrade")
	}
	if fmt.Sprintf("%+v", a) != fmt.Sprintf("%+v", b) {
		t.Errorf("degradation summaries differ:\n%+v\n%+v", a, b)
	}
}
