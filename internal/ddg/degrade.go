// Shadow-memory budget degradation.  When the budget denies shadow
// bytes, the builder stops allocating exact last-writer/last-reader
// records for the denied addresses and instead summarizes whole
// address ranges coarsely: per 2^coarseRangeShift-word range it keeps
// the set of writing and reading instruction contexts with a bounding
// box of their iteration coordinates.  At Finish the ranges pair into
// over-approximated dependence bundles (every writer before every
// reader and writer of the same range) whose pieces carry no affine
// function — exactly the shape the scheduler already treats as a
// star ("all directions") dependence.  Degradation is therefore sound
// in the paper's direction: it can only ADD dependences relative to
// the exact graph, never drop one, so transformations stay legal.
//
// Per-address discipline: a record that went live while the budget
// allowed stays exact forever (set() reuses its memory), and an
// address denied at first touch stays coarse forever (grants are
// monotone).  An event is noted coarsely exactly when one of its
// dependence counterparts lacks an exact record, which makes the
// range pairing a superset of the missing edges — see the chaos and
// superset tests.
package ddg

import (
	"sort"

	"polyprof/internal/budget"
	"polyprof/internal/faultinject"
	"polyprof/internal/fold"
	"polyprof/internal/poly"
)

// coarseRangeShift sets the coarse summary granularity: addresses are
// grouped into 256-word ranges.
const coarseRangeShift = 8

// CoarseRangeShift exposes the coarse-range granularity so the sharded
// engine (internal/parddg) can partition addresses on range boundaries:
// a whole 2^CoarseRangeShift-word range always lands on one shard, which
// keeps shard-local coarse summaries globally disjoint and lets the
// merge pair them exactly like the sequential finishCoarse.
const CoarseRangeShift = coarseRangeShift

// ShadowRecBytes is the budget cost of one live shadow record with
// dim-dimensional retained coordinates; exported so alternative engines
// charge identically to the sequential builder.
func ShadowRecBytes(dim int) uint64 { return recBytes(dim) }

// BaseShadowBytes is the fixed up-front budget cost of the two per-word
// record tables; exported for the same reason as ShadowRecBytes.
func BaseShadowBytes(memWords int64) uint64 { return baseShadowBytes(memWords) }

// shadowFault injects at the shadow-memory accounting path.
var shadowFault = faultinject.Point("ddg.shadow.insert")

// recBytes approximates the cost of one live writer record: the
// record struct plus its retained coordinate slice.
func recBytes(dim int) uint64 { return 32 + 8*uint64(dim) }

// baseShadowBytes is the fixed cost of the two per-word record tables.
func baseShadowBytes(memWords int64) uint64 { return uint64(memWords) * 2 * 32 }

// coordBox is a bounding box over iteration-coordinate vectors.
type coordBox struct {
	lo, hi []int64
	n      uint64 // events folded into the box
}

func (c *coordBox) extend(coords []int64) {
	c.n++
	if c.lo == nil {
		c.lo = append([]int64(nil), coords...)
		c.hi = append([]int64(nil), coords...)
		return
	}
	for i, v := range coords {
		if i >= len(c.lo) {
			break
		}
		if v < c.lo[i] {
			c.lo[i] = v
		}
		if v > c.hi[i] {
			c.hi[i] = v
		}
	}
}

func (c *coordBox) union(o *coordBox) {
	c.n += o.n
	if c.lo == nil {
		c.lo = append([]int64(nil), o.lo...)
		c.hi = append([]int64(nil), o.hi...)
		return
	}
	for i := range c.lo {
		if i >= len(o.lo) {
			break
		}
		if o.lo[i] < c.lo[i] {
			c.lo[i] = o.lo[i]
		}
		if o.hi[i] > c.hi[i] {
			c.hi[i] = o.hi[i]
		}
	}
}

// piece renders the box as an over-approximated dependence piece: an
// Approx domain with no affine producer function, which sched.analyze
// maps to a star dependence (all directions assumed).
func (c *coordBox) piece() fold.Piece {
	dom := poly.NewPoly(len(c.lo))
	dom.Approx = true
	for k := range c.lo {
		dom.AddRange(k, c.lo[k], c.hi[k])
	}
	return fold.Piece{Dom: dom, Exact: false, Points: c.n}
}

// coarseRange summarizes one address range after degradation.
type coarseRange struct {
	writers map[*Instr]*coordBox
	readers map[*Instr]*coordBox
}

// coarseState exists only after the shadow budget tripped.
type coarseState struct {
	ranges map[int64]*coarseRange
	events uint64
}

// Degradation names what was coarsened when a budget tripped mid-run;
// Graph.Degraded carries it into the report's degraded section.
type Degradation struct {
	// Budgets lists the tripped budget resources
	// (budget.ResourceShadowBytes, budget.ResourceDDGEdges).
	Budgets []string `json:"budgets"`
	// Regions are the coarsened address ranges, merged and annotated
	// with the overlapping global arrays.
	Regions []DegradedRegion `json:"regions,omitempty"`
	// CoarseDeps counts dependence bundles carrying an
	// over-approximated piece.
	CoarseDeps int `json:"coarse_deps"`
	// CoarseEvents counts dynamic memory events routed through coarse
	// tracking.
	CoarseEvents uint64 `json:"coarse_events"`
}

// DegradedRegion is one coarsened span of the flat memory.
type DegradedRegion struct {
	Lo      int64    `json:"lo"`
	Hi      int64    `json:"hi"`
	Globals []string `json:"globals,omitempty"`
}

// tripShadow switches the builder into coarse mode (idempotent).
func (b *Builder) tripShadow() {
	if b.coarse == nil {
		b.coarse = &coarseState{ranges: map[int64]*coarseRange{}}
	}
}

// grantRec asks the budget for one more live record; a denial flips
// the builder into coarse mode.  The fault point lets chaos tests
// inject errors, panics or exhaustion exactly here.
func (b *Builder) grantRec(dim int) bool {
	if err := shadowFault.Hit(); err != nil {
		if be, ok := budget.AsError(err); ok && be.Resource == budget.ResourceShadowBytes {
			// Injected shadow exhaustion degrades like the real thing.
			return false
		}
		if b.faultErr == nil {
			b.faultErr = err
		}
	}
	if b.opts.Budget.GrantShadow(recBytes(dim)) {
		return true
	}
	b.tripShadow()
	return false
}

// noteCoarse records one denied-counterpart event in its range
// summary.
func (b *Builder) noteCoarse(addr int64, instr *Instr, coords []int64, write bool) {
	b.tripShadow()
	b.coarse.events++
	key := addr >> coarseRangeShift
	rg := b.coarse.ranges[key]
	if rg == nil {
		rg = &coarseRange{writers: map[*Instr]*coordBox{}, readers: map[*Instr]*coordBox{}}
		b.coarse.ranges[key] = rg
	}
	tab := rg.readers
	if write {
		tab = rg.writers
	}
	box := tab[instr]
	if box == nil {
		box = &coordBox{}
		tab[instr] = box
	}
	box.extend(coords)
}

// coarseEvent handles one memory event after the shadow budget
// tripped.  Live records keep exact tracking (set() reuses their
// memory, so no new bytes are consumed); events whose dependence
// counterpart lacks a record are noted in the range summary.
func (b *Builder) coarseEvent(instr *Instr, coords []int64, addr int64, write bool) {
	w := &b.shadow[addr]
	r := &b.lastRead[addr]
	note := false
	if write {
		if w.instr != nil {
			if b.opts.TrackOutput {
				b.addDep(w.instr, w.coords, instr, coords, Output)
			}
			w.set(instr, coords)
		} else {
			// Readers of this address can only be coarse too: the
			// range pairing needs this writer.
			note = true
		}
		if r.instr != nil {
			if b.opts.TrackAnti {
				b.addDep(r.instr, r.coords, instr, coords, Anti)
			}
		} else if b.opts.TrackAnti {
			note = true
		}
	} else {
		if w.instr != nil {
			b.addDep(w.instr, w.coords, instr, coords, FlowMem)
		} else {
			note = true
		}
		if r.instr != nil {
			r.set(instr, coords)
		} else if b.opts.TrackAnti {
			note = true
		}
	}
	if note {
		b.noteCoarse(addr, instr, coords, write)
	}
}

// addCoarseDep merges one range-pairing edge into the dependence map.
// consumerBox is the consumer's coordinate box (the dependence piece
// domain lives in consumer coordinates).
func (b *Builder) addCoarseDep(src, dst *Instr, kind Kind, consumerBox *coordBox) {
	key := depKey{src: src.ID, dst: dst.ID, kind: kind}
	d, ok := b.deps[key]
	if !ok {
		b.opts.Budget.GrantEdges(1)
		d = &Dep{Src: src, Dst: dst, Kind: kind}
		b.deps[key] = d
		b.allDeps = append(b.allDeps, d)
	}
	d.Degraded = true
	if d.box == nil {
		d.box = &coordBox{}
	}
	d.box.union(consumerBox)
}

// finishCoarse pairs every coarse range into over-approximated
// dependence bundles: flow = writers x readers, anti = readers x
// writers, output = all ordered writer pairs (self included).  The
// result is a provable superset of the dependences exact tracking
// would have recorded for those addresses.
func (b *Builder) finishCoarse() {
	if b.coarse == nil {
		return
	}
	keys := make([]int64, 0, len(b.coarse.ranges))
	for k := range b.coarse.ranges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		rg := b.coarse.ranges[k]
		writers := sortedByID(rg.writers)
		readers := sortedByID(rg.readers)
		for _, w := range writers {
			for _, r := range readers {
				b.addCoarseDep(w, r, FlowMem, rg.readers[r])
				if b.opts.TrackAnti {
					b.addCoarseDep(r, w, Anti, rg.writers[w])
				}
			}
			if b.opts.TrackOutput {
				for _, w2 := range writers {
					b.addCoarseDep(w, w2, Output, rg.writers[w2])
				}
			}
		}
	}
}

func sortedByID(m map[*Instr]*coordBox) []*Instr {
	out := make([]*Instr, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// buildDegradation assembles the Graph's degraded section.
func (b *Builder) buildDegradation(g *Graph) {
	tripped := b.opts.Budget.Tripped()
	if tripped == nil {
		// Provisional clones drop the live budget; Clone pins its
		// tripped list so the provisional report still names it.
		tripped = b.pinTripped
	}
	if b.coarse == nil && len(tripped) == 0 {
		return
	}
	deg := &Degradation{Budgets: tripped}
	if b.coarse != nil {
		deg.CoarseEvents = b.coarse.events
		deg.Regions = b.coarseRegions()
	}
	for _, d := range g.Deps {
		if d.Degraded {
			deg.CoarseDeps++
		}
	}
	g.Degraded = deg
}

// coarseRegions merges adjacent coarse ranges into address regions and
// names the global arrays they overlap.
func (b *Builder) coarseRegions() []DegradedRegion {
	keys := make([]int64, 0, len(b.coarse.ranges))
	for k := range b.coarse.ranges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []DegradedRegion
	for _, k := range keys {
		lo := k << coarseRangeShift
		hi := lo + (1 << coarseRangeShift) - 1
		if hi >= b.prog.MemWords {
			hi = b.prog.MemWords - 1
		}
		if n := len(out); n > 0 && out[n-1].Hi+1 >= lo {
			out[n-1].Hi = hi
			continue
		}
		out = append(out, DegradedRegion{Lo: lo, Hi: hi})
	}
	for i := range out {
		r := &out[i]
		var names []string
		for name, gl := range b.prog.Globals {
			if gl.Base <= r.Hi && gl.Base+gl.Size > r.Lo {
				names = append(names, name)
			}
		}
		sort.Strings(names)
		r.Globals = names
	}
	return out
}
