package polyprof_test

import (
	"bytes"
	"context"
	"os"
	"testing"

	"polyprof"
	"polyprof/internal/fold"
)

// streamReportJSON profiles a workload in streaming mode (epochs of
// epochEvents dynamic instructions) and renders the final report JSON.
// It returns the report bytes and the number of epoch boundaries that
// fired.
func streamReportJSON(t *testing.T, name string, shards int, epochEvents uint64) ([]byte, int) {
	t.Helper()
	prog, err := polyprof.Workload(name)
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	rep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{
		ParallelDDG: shards,
		EpochEvents: epochEvents,
		OnEpoch: func(ep *polyprof.Epoch) error {
			epochs++
			if ep.Provisional == nil {
				t.Errorf("%s: epoch %d has no provisional profile", name, ep.N)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("%s shards=%d epochs=%d: %v", name, shards, epochEvents, err)
	}
	cm := polyprof.DefaultCostModel()
	data, err := rep.JSON(&cm)
	if err != nil {
		t.Fatal(err)
	}
	return data, epochs
}

// TestStreamingEquivalence: a streaming run's FINAL report is
// byte-for-byte identical to the buffered one — with the sequential
// builder and with the sharded parallel engine.  Provisional folding
// at every boundary must not perturb the live state (the clone carries
// no budget and a detached registry).
//
// The default run covers the fast workload subset; the dedicated CI
// leg sets POLYPROF_STREAM_EXHAUSTIVE=1 to cover every bundled
// workload (the full-length case studies profile for minutes each,
// which would blow the default suite's timeout).
func TestStreamingEquivalence(t *testing.T) {
	defer fold.SetOwnershipChecks(fold.SetOwnershipChecks(true))
	var names []string
	switch {
	case testing.Short():
		names = []string{"backprop", "hotspot", "example1"}
	case os.Getenv("POLYPROF_STREAM_EXHAUSTIVE") != "":
		names = polyprof.Workloads()
	default:
		for _, n := range polyprof.Workloads() {
			if fastWorkloads[n] {
				names = append(names, n)
			}
		}
	}
	totalEpochs := 0
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			want := reportJSON(t, name, 0)
			// ~4 epochs per workload: enough boundaries to exercise the
			// provisional fold without dominating the suite's runtime.
			prog, err := polyprof.Workload(name)
			if err != nil {
				t.Fatal(err)
			}
			exec, err := polyprof.ProfileExecution(prog)
			if err != nil {
				t.Fatal(err)
			}
			epochEvents := exec.Stats.Ops/4 + 1
			for _, shards := range []int{0, 8} {
				got, epochs := streamReportJSON(t, name, shards, epochEvents)
				totalEpochs += epochs
				if !bytes.Equal(want, got) {
					t.Errorf("shards=%d: streamed report differs from buffered (%d vs %d bytes)",
						shards, len(got), len(want))
					for i := 0; i < len(want) && i < len(got); i++ {
						if want[i] != got[i] {
							lo, hi := i-120, i+120
							if lo < 0 {
								lo = 0
							}
							if hi > len(want) {
								hi = len(want)
							}
							if hi > len(got) {
								hi = len(got)
							}
							t.Fatalf("first difference at byte %d:\nbuffered: %s\nstreamed: %s", i, want[lo:hi], got[lo:hi])
						}
					}
					t.FailNow()
				}
			}
		})
	}
	if totalEpochs == 0 {
		t.Fatal("no epoch boundary fired across any workload; streaming mode never engaged")
	}
}

// TestStreamingCheckpointResume: interrupting a streaming run and
// resuming from a mid-run checkpoint produces a final report
// byte-identical to an uninterrupted buffered run, and the resumed
// attempt demonstrably starts past event zero (its first epoch ordinal
// continues the checkpoint's).
func TestStreamingCheckpointResume(t *testing.T) {
	const name = "backprop"
	prog, err := polyprof.Workload(name)
	if err != nil {
		t.Fatal(err)
	}
	// Size epochs off the workload's real op count so the run always
	// crosses several boundaries.
	exec, err := polyprof.ProfileExecution(prog)
	if err != nil {
		t.Fatal(err)
	}
	epochEvents := exec.Stats.Ops / 8
	if epochEvents == 0 {
		t.Fatalf("workload %s too small (%d ops)", name, exec.Stats.Ops)
	}

	want := reportJSON(t, name, 0)

	type ckpt struct {
		n    uint64
		data []byte
	}
	var cks []ckpt
	if _, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{
		EpochEvents: epochEvents,
		OnEpoch: func(ep *polyprof.Epoch) error {
			if len(ep.Checkpoint) > 0 {
				cks = append(cks, ckpt{ep.N, append([]byte(nil), ep.Checkpoint...)})
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if len(cks) < 2 {
		t.Fatalf("want at least 2 checkpoints, got %d", len(cks))
	}

	mid := cks[len(cks)/2]
	ck, err := polyprof.DecodeCheckpoint(mid.data)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch != mid.n {
		t.Fatalf("checkpoint epoch %d, want %d", ck.Epoch, mid.n)
	}
	if ck.Events == 0 {
		t.Fatal("mid-run checkpoint taken at event zero")
	}

	var firstEpoch uint64
	// Fresh program image: resume must not depend on any state the
	// interrupted attempt left behind.
	prog2, err := polyprof.Workload(name)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := polyprof.ProfileWith(context.Background(), prog2, polyprof.ProfileOptions{
		EpochEvents: epochEvents,
		Resume:      ck,
		OnEpoch: func(ep *polyprof.Epoch) error {
			if firstEpoch == 0 {
				firstEpoch = ep.N
			}
			return nil
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if firstEpoch != ck.Epoch+1 {
		t.Errorf("resumed run's first epoch = %d, want %d (continuation of checkpoint)", firstEpoch, ck.Epoch+1)
	}
	cm := polyprof.DefaultCostModel()
	got, err := rep.JSON(&cm)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Fatalf("resumed report differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
	}
}

// streamChurnProgram builds the bounded-memory stress workload: iters
// sweeps over a region of phases*perPhase words, each sweep touching
// one phase slice (read-modify-write per element) and moving on.  A
// slice therefore goes untouched for phases-1 epochs between visits —
// exactly the access pattern whose shadow records streaming mode folds
// and releases at every boundary.
func streamChurnProgram(iters, phases, perPhase int64) *polyprof.Program {
	pb := polyprof.NewProgram("stream-churn")
	region := pb.Global("region", phases*perPhase)
	f := pb.Func("main", 0)
	base := f.IConst(region.Base)
	one := f.FConst(1.0)
	f.Loop("sweep", f.IConst(0), f.IConst(iters), 1, func(it polyprof.Reg) {
		slice := f.Mul(f.Mod(it, f.IConst(phases)), f.IConst(perPhase))
		f.Loop("elem", f.IConst(0), f.IConst(perPhase), 1, func(j polyprof.Reg) {
			idx := f.Add(slice, j)
			v := f.FLoadIdx(base, idx, 0)
			f.FStoreIdx(base, idx, 0, f.FAdd(v, one))
		})
	})
	f.Halt()
	pb.SetMain(f)
	return pb.MustBuild()
}

// TestStreamingBoundedMemory: a streaming run whose cumulative shadow
// traffic is >= 100x the configured ceiling completes without ever
// tripping the budget — fold-and-release at epoch boundaries keeps the
// live footprint under the limit for arbitrarily long traces, where a
// buffered run would degrade to coarse tracking.
func TestStreamingBoundedMemory(t *testing.T) {
	// 16 phase slices of 128 words: the buffered builder's footprint
	// (dense base tables + one record pair per distinct address) lands
	// well above the ceiling, while streaming only ever keeps the base
	// tables plus a couple of slices' records live.
	iters, phases, perPhase := int64(2400), int64(16), int64(128)
	if testing.Short() {
		iters = 400
	}
	prog := streamChurnProgram(iters, phases, perPhase)
	exec, err := polyprof.ProfileExecution(prog)
	if err != nil {
		t.Fatal(err)
	}
	// One epoch per sweep: a slice's records go stale (and are
	// released) a few epochs after each visit.
	epochEvents := exec.Stats.Ops / uint64(iters)

	const limit = 256 << 10
	var released uint64
	var epochs int
	rep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{
		Limits:      polyprof.BudgetLimits{MaxShadowBytes: limit},
		EpochEvents: epochEvents,
		OnEpoch: func(ep *polyprof.Epoch) error {
			released += ep.ReleasedBytes
			epochs++
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Profile.DDG.Degraded != nil {
		t.Fatalf("streaming run degraded despite fold-and-release: %+v", rep.Profile.DDG.Degraded)
	}
	factor := released / limit
	t.Logf("epochs=%d released=%d bytes (%dx the %d-byte ceiling)", epochs, released, factor, uint64(limit))
	if !testing.Short() && factor < 100 {
		t.Fatalf("cumulative released shadow bytes %d < 100x the %d-byte ceiling; churn workload too small", released, uint64(limit))
	}
	if testing.Short() && released == 0 {
		t.Fatal("no shadow bytes released; streaming release never engaged")
	}

	// The same trace under the same ceiling WITHOUT streaming must
	// degrade — otherwise this test isn't demonstrating anything.
	bufRep, err := polyprof.ProfileWith(context.Background(), prog, polyprof.ProfileOptions{
		Limits: polyprof.BudgetLimits{MaxShadowBytes: limit},
	})
	if err != nil {
		t.Fatal(err)
	}
	if bufRep.Profile.DDG.Degraded == nil {
		t.Fatal("buffered run under the same ceiling did not degrade; ceiling too generous for the churn workload")
	}
}
