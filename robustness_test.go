package polyprof_test

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"testing"
	"time"

	"polyprof"
)

// TestProfileCtxCanceled: a canceled context aborts the pipeline with
// a classified budget error instead of running to completion.
func TestProfileCtxCanceled(t *testing.T) {
	prog, err := polyprof.Workload("backprop")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = polyprof.ProfileCtx(ctx, prog, polyprof.BudgetLimits{})
	var be *polyprof.BudgetError
	if !errors.As(err, &be) || !be.Canceled() {
		t.Fatalf("want canceled budget error, got %v", err)
	}
}

// TestProfileCtxStepLimit: a hard step budget aborts with the vm-steps
// resource named in the error.
func TestProfileCtxStepLimit(t *testing.T) {
	prog, err := polyprof.Workload("backprop")
	if err != nil {
		t.Fatal(err)
	}
	_, err = polyprof.ProfileCtx(context.Background(), prog, polyprof.BudgetLimits{MaxSteps: 100})
	var be *polyprof.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want budget error, got %v", err)
	}
	if be.Resource != "vm-steps" {
		t.Fatalf("resource = %q, want vm-steps", be.Resource)
	}
}

// TestProfileCtxWallLimit: an immediate wall-clock limit aborts with a
// timeout-classified error.
func TestProfileCtxWallLimit(t *testing.T) {
	prog, err := polyprof.Workload("backprop")
	if err != nil {
		t.Fatal(err)
	}
	_, err = polyprof.ProfileCtx(context.Background(), prog, polyprof.BudgetLimits{Wall: time.Nanosecond})
	var be *polyprof.BudgetError
	if !errors.As(err, &be) || !be.Timeout() {
		t.Fatalf("want wall-clock budget error, got %v", err)
	}
}

// TestDegradedReportFixture profiles a Rodinia workload under a shadow
// budget small enough to degrade it and validates the resulting JSON
// report end-to-end: schema-valid, marked degraded, with the tripped
// budget and coarsened regions named.  With POLYPROF_DEGJSON=1 the
// report is written to DEGRADED_report.json (kept as a CI artifact
// next to BENCH_overhead.json).
func TestDegradedReportFixture(t *testing.T) {
	prog, err := polyprof.Workload("nn")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := polyprof.ProfileCtx(context.Background(), prog,
		polyprof.BudgetLimits{MaxShadowBytes: 4096})
	if err != nil {
		t.Fatalf("degrading limits must not fail the run: %v", err)
	}
	cm := polyprof.DefaultCostModel()
	data, err := rep.JSON(&cm)
	if err != nil {
		t.Fatal(err)
	}

	var doc struct {
		Program     string  `json:"program"`
		TotalOps    uint64  `json:"total_ops"`
		PctAffine   float64 `json:"pct_affine"`
		Degraded    bool    `json:"degraded"`
		Degradation *struct {
			Budgets []string `json:"budgets"`
			Regions []struct {
				Lo      int64    `json:"lo"`
				Hi      int64    `json:"hi"`
				Globals []string `json:"globals"`
			} `json:"regions"`
			CoarseDeps   int    `json:"coarse_deps"`
			CoarseEvents uint64 `json:"coarse_events"`
		} `json:"degradation"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("degraded report is not schema-valid JSON: %v", err)
	}
	if !doc.Degraded || doc.Degradation == nil {
		t.Fatal("report not marked degraded")
	}
	if len(doc.Degradation.Budgets) == 0 || doc.Degradation.CoarseDeps == 0 {
		t.Fatalf("degradation section empty: %+v", doc.Degradation)
	}
	for _, r := range doc.Degradation.Regions {
		if r.Lo > r.Hi {
			t.Errorf("region [%d, %d] inverted", r.Lo, r.Hi)
		}
	}
	if doc.TotalOps == 0 {
		t.Fatal("degraded report lost the operation counters")
	}

	if os.Getenv("POLYPROF_DEGJSON") == "1" {
		if err := os.WriteFile("DEGRADED_report.json", append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Log("wrote DEGRADED_report.json")
	}
}
